// Package pipeline wires the paper's Figure 2 architecture: streaming
// AIS records are consumed from the embedded broker by ingestion
// workers and routed to one vessel actor per MMSI; vessel actors hold
// per-vessel history, run the shared S-VRF model, detect AIS
// switch-offs and fan their positions and forecasts out to cell actors
// (close-proximity detection, grid size M) and collision actors
// (collision forecasting, grid size K) keyed by hexgrid cell; all actor
// outputs flow to writer actors that persist state into the kvstore
// middleware, from which the HTTP API serves the UI.
package pipeline

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/chaos"
	"seatwin/internal/checkpoint"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/hexgrid"
	"seatwin/internal/kvstore"
	"seatwin/internal/lvrf"
	"seatwin/internal/metrics"
	"seatwin/internal/retry"
	"seatwin/internal/views"
)

// Config assembles a Pipeline.
type Config struct {
	// Forecaster is the route forecasting model shared by all vessel
	// actors (the paper mounts one S-VRF instance per process). It must
	// be safe for concurrent use.
	Forecaster events.TrackForecaster
	// ProximityResolution is the hexgrid resolution of the cell actors
	// (grid "M" in §3); CollisionResolution that of the collision
	// actors ("K").
	ProximityResolution int
	CollisionResolution int
	// Collision, Proximity and SwitchOff parameterise the detectors.
	Collision events.CollisionConfig
	Proximity events.ProximityConfig
	SwitchOff events.SwitchOffConfig
	// UseScanDetectors reverts the cell and collision actors to the
	// original map-scan detectors instead of the spatial micro-grid fast
	// paths (see DESIGN.md §16). The scan detectors are kept as parity
	// oracles and for A/B benchmarking; event output is identical on
	// either path, only the per-report cost differs.
	UseScanDetectors bool
	// HistoryLimit bounds the reports retained per vessel actor; it
	// must cover the model's input requirement with margin.
	HistoryLimit int
	// Writers is the number of writer actors (the paper runs one but
	// supports several).
	Writers int
	// Store receives the persisted actor states; nil creates one.
	Store *kvstore.Store
	// MetricsWindow is the moving-average window of the scalability
	// series (100 in Figure 6).
	MetricsWindow int
	// DisableEventFanout turns off proximity/collision sharing (used by
	// ablation benches to isolate forecasting cost).
	DisableEventFanout bool
	// Ports, when non-empty, enables port-congestion monitoring and
	// prediction over the vessel positions and forecasts (§7 extension;
	// see internal/congestion).
	Ports []congestion.Port
	// CellIdleTimeout passivates cell and collision actors that have
	// received no traffic for this long, bounding the actor population
	// to the active sea areas (0 = 5 minutes; negative = never).
	CellIdleTimeout time.Duration
	// RouteModel, when non-nil, serves long-term route forecasts and
	// Patterns of Life over the API (§4.1's L-VRF, integrated "through
	// API calls" per the paper).
	RouteModel *lvrf.Model
	// Feed, when non-nil, receives every vessel state and event for
	// live fan-out to push subscribers (SSE / TCP feed): the writer
	// actors publish onto the actor system's EventStream and the hub is
	// attached to it (see internal/feed). For a broker-decoupled
	// deployment attach the hub to the output topics instead with
	// feed.Hub.ConsumeLoop and DecodeFeedRecord.
	Feed *feed.Hub
	// Views, when non-nil, is the read-side serving layer: the writer
	// actors publish every vessel state and event into it, and the API
	// serves /api/vessels, /api/events, /api/regions and /api/congestion
	// from its epoch-swapped snapshots instead of scanning the kvstore
	// per request (see internal/views). The pipeline wires the
	// congestion monitor in as the views' congestion source when Ports
	// is also set. The caller owns the Views' lifecycle (Close it after
	// Shutdown). Nil keeps the kvstore-backed read path unchanged.
	Views *views.Views
	// OutputBroker, when non-nil, receives dedicated output streams —
	// the §7 plan to "leverage Kafka topics to produce streams of
	// dedicated system, model and actor-based outputs": the writer
	// actors produce every event to OutputEventsTopic and every vessel
	// state/forecast to OutputStatesTopic (keyed by MMSI), for external
	// consumers to subscribe to.
	OutputBroker      *broker.Broker
	OutputEventsTopic string
	OutputStatesTopic string
	// CheckpointInterval is how many accepted reports a vessel actor
	// processes between history checkpoints into the store (0 = 16;
	// negative = checkpointing and rehydration disabled). Actors also
	// checkpoint once on Stopping, so a clean Shutdown persists every
	// live window regardless of the interval.
	CheckpointInterval int
	// Chaos, when non-nil, injects faults into the pipeline's store
	// writes and the forecaster (see internal/chaos). The API's read
	// side stays fault-free so operators can always observe the run.
	Chaos *chaos.Injector
	// Retry shapes the backoff loop around store writes and the broker
	// consume round (zero value = retry.DefaultPolicy()).
	Retry retry.Policy
	// Cluster, when non-nil, runs this pipeline as one worker of a
	// partitioned cluster: keys it does not own are forwarded onto the
	// owning partition's broker topic instead of being processed
	// locally (see cluster.go). Nil keeps the single-process fast path
	// byte-for-byte unchanged.
	Cluster *ClusterConfig
}

// DefaultConfig returns the paper's deployment shape.
func DefaultConfig(fc events.TrackForecaster) Config {
	return Config{
		Forecaster:          fc,
		ProximityResolution: 9, // ~1.1 km cells for 500 m proximity
		CollisionResolution: 7, // ~4.5 km cells for 30-minute forecasts
		Collision:           events.DefaultCollisionConfig(),
		Proximity:           events.DefaultProximityConfig(),
		SwitchOff:           events.DefaultSwitchOffConfig(),
		HistoryLimit:        48,
		Writers:             1,
		MetricsWindow:       100,
	}
}

// Sample is one point of the Figure 6 series: the moving-window mean
// processing time at a given population. Vessels counts the distinct
// MMSIs seen (the paper's x-axis); Actors the total live actors
// including cell, collision and writer actors.
type Sample struct {
	Vessels    int64
	Actors     int64
	AvgProcess time.Duration
}

// stateStore is the write surface the pipeline persists through. It is
// the raw *kvstore.Store unless Config.Chaos is set, in which case the
// chaos wrapper injects faults on this path while API reads keep going
// to the raw store (so "no lost committed state" stays checkable).
type stateStore interface {
	HSetMulti(key string, fields map[string]string) (int, error)
	HSetFields(key string, fields []kvstore.Field) (int, error)
	HGetAll(key string) (map[string]string, error)
	ZAdd(key string, score float64, member string) (bool, error)
	Publish(channel, payload string) int
	Del(keys ...string) int
}

// Pipeline is a running instance of the system.
type Pipeline struct {
	cfg    Config
	system *actor.System
	store  *kvstore.Store
	kv     stateStore // fault-injectable write path over store
	retryP retry.Policy
	log    *events.Log

	writers []*actor.PID

	// Route caches: integer entity key -> PID, skipping name building
	// and registry string hashing on the per-report hot path. Entries
	// are invalidated through the actor system's unregister hook (see
	// routecache.go for the correctness model).
	vesselRoutes    *routeCache
	proximityRoutes *routeCache
	collisionRoutes *routeCache

	statics sync.Map // ais.MMSI -> ais.StaticVoyage, the shared cache

	// routeModel is the serving L-VRF model behind /api/route, seeded
	// from Config.RouteModel and hot-swappable at runtime: the lifecycle
	// trainer publishes a freshly rebuilt lane graph with SetRouteModel
	// and in-flight requests keep the model they loaded.
	routeModel atomic.Pointer[lvrf.Model]

	// writerMask routes a vessel to its writer with a power-of-two mask
	// over the mixed MMSI (len(writers) is rounded up to a power of two).
	writerMask uint64

	// The per-message observability path is striped: vessel actors record
	// into per-shard slots keyed by MMSI, and a background sampler drains
	// the accumulator into the Figure 6 moving-average series — no global
	// lock is taken while processing a message.
	latency       *metrics.ShardedLatencyRecorder
	inferLat      *metrics.ShardedLatencyRecorder // model-inference slice of processing
	procAcc       *metrics.ShardedAccumulator
	procMu        sync.Mutex // guards movingAvg + series (sampler vs readers)
	movingAvg     *metrics.MovingAverage
	series        []Sample
	samplePending int64
	sampleGap     int64
	samplerStop   chan struct{}
	samplerDone   chan struct{}

	messages     *metrics.ShardedCounter
	forecasts    *metrics.ShardedCounter
	badSentences int64
	vessels      int64 // distinct vessel actors spawned (paper's x-axis)
	ingested     int64 // messages accepted by Ingest (Drain's idle test)
	closed       int32

	// Durability counters (seatwin_retry_* / seatwin_checkpoint_*).
	retryAttempts  *metrics.ShardedCounter // total tries across retried ops
	retryRetried   *metrics.ShardedCounter // ops that succeeded after >=1 retry
	retryExhausted *metrics.ShardedCounter // ops dropped to degraded mode
	ckptSaves      *metrics.ShardedCounter // checkpoints written
	ckptRestores   *metrics.ShardedCounter // vessel windows rehydrated on spawn
	ckptFailures   *metrics.ShardedCounter // saves/loads lost after retries

	// Event-detection observability (seatwin_events_*): per-family
	// update timing, candidate funnel and tracked-entry occupancy,
	// maintained by the cell and collision actors from their detectors'
	// cumulative stats (delta-pushed, so the actors stay lock-free).
	proxDet detectorMetrics
	collDet detectorMetrics

	// assembler reassembles multi-fragment AIVDM input for IngestNMEA.
	assembler *ais.Assembler

	// Cross-cell deduplication of pairwise events: several collision
	// actors can detect the same pair in the same pass. The seen-map is
	// sharded by key hash so concurrent collision actors only contend
	// when their pairs land in the same stripe.
	pairShards [pairShardCount]pairShard

	// congestion is non-nil when Config.Ports was set.
	congestion *congestion.Monitor

	// feedDetach unsubscribes the live-feed hub from the EventStream on
	// shutdown (nil when Config.Feed was not set).
	feedDetach func()

	// cl is the cluster worker runtime (nil in single-process mode —
	// every ownership check on the hot path is then one nil compare).
	cl *clusterState
}

// pairShardCount stripes the pairwise-event dedup map (power of two).
const pairShardCount = 16

// pairShard is one stripe of the pairwise dedup state.
type pairShard struct {
	mu   sync.Mutex
	seen map[string]time.Time
	_    [48]byte
}

// detectorMetrics is one detector family's observability surface: the
// per-update latency summary, the candidate-pair funnel (candidates
// surviving the spatial probe, pairs fully checked, entries evicted)
// and the live tracked-entry occupancy across every cell of the
// family. All sharded — the single-threaded spatial actors push deltas
// keyed by MMSI without contending.
type detectorMetrics struct {
	updateLat  *metrics.ShardedLatencyRecorder
	candidates *metrics.ShardedCounter
	checked    *metrics.ShardedCounter
	evictions  *metrics.ShardedCounter
	tracked    *metrics.ShardedCounter // gauge: Size() deltas, decremented on passivation
}

func newDetectorMetrics() detectorMetrics {
	return detectorMetrics{
		updateLat:  metrics.NewShardedLatencyRecorder(0, 1<<15),
		candidates: metrics.NewShardedCounter(0),
		checked:    metrics.NewShardedCounter(0),
		evictions:  metrics.NewShardedCounter(0),
		tracked:    metrics.NewShardedCounter(0),
	}
}

// DetectionStats is one detector family's snapshot in Stats.
type DetectionStats struct {
	UpdateLatency metrics.Snapshot
	Candidates    int64
	Checked       int64
	Evicted       int64
	Tracked       int64
}

func (m *detectorMetrics) snapshot() DetectionStats {
	return DetectionStats{
		UpdateLatency: m.updateLat.Snapshot(),
		Candidates:    m.candidates.Value(),
		Checked:       m.checked.Value(),
		Evicted:       m.evictions.Value(),
		Tracked:       m.tracked.Value(),
	}
}

// Congestion returns the port-congestion monitor, or nil when port
// monitoring is not configured.
func (p *Pipeline) Congestion() *congestion.Monitor { return p.congestion }

// shouldEmitPair reports whether a pairwise event may be emitted, and
// records it; repeats within the window are suppressed system-wide.
// The check is striped by key hash: a pair always routes to the same
// shard, so dedup stays exact while unrelated pairs never contend.
func (p *Pipeline) shouldEmitPair(key string, at time.Time, window time.Duration) bool {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	sh := &p.pairShards[h&(pairShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if last, ok := sh.seen[key]; ok && at.Sub(last) < window {
		return false
	}
	// Opportunistic cleanup keeps each stripe bounded.
	if len(sh.seen) > (1<<16)/pairShardCount {
		for k, t := range sh.seen {
			if at.Sub(t) > window {
				delete(sh.seen, k)
			}
		}
	}
	sh.seen[key] = at
	return true
}

// New builds and starts the actor topology (writers only; vessel and
// cell actors materialise on first contact).
func New(cfg Config) (*Pipeline, error) {
	if cfg.Forecaster == nil {
		return nil, fmt.Errorf("pipeline: a forecaster is required")
	}
	if cfg.HistoryLimit < 24 {
		cfg.HistoryLimit = 48
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 1
	}
	// The writer fan-out uses a power-of-two mask; round the writer pool
	// up so every mask value maps to a writer.
	for w := 1; ; w <<= 1 {
		if w >= cfg.Writers {
			cfg.Writers = w
			break
		}
	}
	if cfg.MetricsWindow <= 0 {
		cfg.MetricsWindow = 100
	}
	if cfg.Chaos != nil {
		// The shared forecaster is wrapped here so vessel actors exercise
		// refused forecasts and supervision restarts under chaos.
		cfg.Forecaster = chaos.WrapForecaster(cfg.Forecaster, cfg.Chaos)
	}
	store := cfg.Store
	if store == nil {
		store = kvstore.New()
	}
	p := &Pipeline{
		cfg:         cfg,
		system:      actor.NewSystem("seatwin"),
		store:       store,
		log:         events.NewLog(1 << 14),
		latency:     metrics.NewShardedLatencyRecorder(0, 1<<15),
		inferLat:    metrics.NewShardedLatencyRecorder(0, 1<<15),
		procAcc:     metrics.NewShardedAccumulator(0),
		movingAvg:   metrics.NewMovingAverage(cfg.MetricsWindow),
		sampleGap:   500,
		messages:    metrics.NewShardedCounter(0),
		forecasts:   metrics.NewShardedCounter(0),
		writerMask:  uint64(cfg.Writers - 1),
		samplerStop: make(chan struct{}),
		samplerDone: make(chan struct{}),
		assembler:   ais.NewAssembler(),

		vesselRoutes:    newRouteCache(),
		proximityRoutes: newRouteCache(),
		collisionRoutes: newRouteCache(),

		retryAttempts:  metrics.NewShardedCounter(0),
		retryRetried:   metrics.NewShardedCounter(0),
		retryExhausted: metrics.NewShardedCounter(0),
		ckptSaves:      metrics.NewShardedCounter(0),
		ckptRestores:   metrics.NewShardedCounter(0),
		ckptFailures:   metrics.NewShardedCounter(0),

		proxDet: newDetectorMetrics(),
		collDet: newDetectorMetrics(),
	}
	p.kv = store
	if cfg.Chaos != nil {
		p.kv = chaos.WrapKV(store, cfg.Chaos)
	}
	p.retryP = cfg.Retry
	if p.retryP.IsZero() {
		p.retryP = retry.DefaultPolicy()
	}
	if cfg.RouteModel != nil {
		p.routeModel.Store(cfg.RouteModel)
	}
	for i := range p.pairShards {
		p.pairShards[i].seen = make(map[string]time.Time)
	}
	if len(cfg.Ports) > 0 {
		p.congestion = congestion.NewMonitor(cfg.Ports, 0)
	}
	if cfg.Views != nil && p.congestion != nil {
		mon := p.congestion
		cfg.Views.SetCongestionSource(func() []congestion.Status {
			return mon.Snapshot(time.Time{}) // zero = newest observed (sim time)
		})
	}
	if cfg.OutputBroker != nil {
		if p.cfg.OutputEventsTopic == "" {
			p.cfg.OutputEventsTopic = "seatwin-events"
		}
		if p.cfg.OutputStatesTopic == "" {
			p.cfg.OutputStatesTopic = "seatwin-states"
		}
		if err := cfg.OutputBroker.CreateTopic(p.cfg.OutputEventsTopic, 4); err != nil {
			return nil, err
		}
		if err := cfg.OutputBroker.CreateTopic(p.cfg.OutputStatesTopic, 4); err != nil {
			return nil, err
		}
	}
	// Route-cache invalidation rides the registry's unregister hook:
	// stopped or passivated actors drop their cached routes.
	p.system.OnUnregister(p.onActorUnregistered)
	if cfg.Feed != nil {
		p.feedDetach = cfg.Feed.AttachStream(p.system.Events())
	}
	for i := 0; i < cfg.Writers; i++ {
		pid, err := p.system.SpawnNamed(
			actor.PropsFromProducer(func() actor.Actor { return &writerActor{p: p} }),
			"writer-"+strconv.Itoa(i))
		if err != nil {
			return nil, err
		}
		p.writers = append(p.writers, pid)
	}
	if cfg.Cluster != nil {
		cl, err := newClusterState(p, *cfg.Cluster)
		if err != nil {
			return nil, err
		}
		p.cl = cl
		if err := cl.start(); err != nil {
			return nil, err
		}
	}
	go p.sampler()
	return p, nil
}

// sampler periodically drains the per-shard processing-time
// accumulators into the Figure 6 moving-average series. It is the only
// writer of movingAvg/series, so message processing never touches the
// series lock.
func (p *Pipeline) sampler() {
	defer close(p.samplerDone)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-p.samplerStop:
			p.drainSample()
			return
		case <-ticker.C:
			p.drainSample()
		}
	}
}

// drainSample folds the accumulated processing times into the moving
// average and appends one series point per sampleGap observations.
func (p *Pipeline) drainSample() {
	count, sum := p.procAcc.Drain()
	if count == 0 {
		return
	}
	mean := float64(sum) / float64(count)
	p.procMu.Lock()
	avg := p.movingAvg.Add(mean)
	p.samplePending += count
	for p.samplePending >= p.sampleGap {
		p.samplePending -= p.sampleGap
		p.series = append(p.series, Sample{
			Vessels:    atomic.LoadInt64(&p.vessels),
			Actors:     p.system.LiveActors(),
			AvgProcess: time.Duration(avg),
		})
	}
	p.procMu.Unlock()
}

// System exposes the actor system (introspection and tests).
func (p *Pipeline) System() *actor.System { return p.system }

// Store exposes the middleware state store.
func (p *Pipeline) Store() *kvstore.Store { return p.store }

// EventLog exposes the in-memory event list (the UI's Figure 4f feed).
func (p *Pipeline) EventLog() *events.Log { return p.log }

// writerFor deterministically assigns an output source to one writer:
// a power-of-two mask over the mixed MMSI, cheaper than the modulo it
// replaces and evenly spread even for sequential MMSI blocks.
func (p *Pipeline) writerFor(mmsi ais.MMSI) *actor.PID {
	h := uint64(mmsi)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return p.writers[h&p.writerMask]
}

// ckptInterval resolves the checkpoint cadence: reports between
// snapshots, or 0 when checkpointing is disabled.
func (p *Pipeline) ckptInterval() int {
	switch {
	case p.cfg.CheckpointInterval < 0:
		return 0
	case p.cfg.CheckpointInterval == 0:
		return 16
	default:
		return p.cfg.CheckpointInterval
	}
}

// retryDo runs op under the pipeline's retry policy, recording the
// per-outcome seatwin_retry_* counters on the shard selected by hint.
// It returns false when attempts were exhausted — the caller drops to
// degraded mode (skip the write, keep ingesting) rather than blocking.
func (p *Pipeline) retryDo(hint uint64, op func() error) bool {
	res := p.retryP.Do(op)
	p.retryAttempts.Inc(hint, int64(res.Attempts))
	if res.Err != nil {
		p.retryExhausted.Inc(hint, 1)
		return false
	}
	if res.Retried() {
		p.retryRetried.Inc(hint, 1)
	}
	return true
}

// checkpointStale reports whether the store already holds a checkpoint
// for key at least as new as a window ending at lastTS. Only consulted
// in cluster mode, where two workers can briefly both hold a moved
// vessel: the old owner's late passivation snapshot must not clobber
// the new owner's fresher one. The read goes to the raw store (the
// fault-free side), and any unreadable value fails open — a write the
// retry layer already tolerates losing.
func (p *Pipeline) checkpointStale(key string, lastTS time.Time) bool {
	if p.cl == nil {
		return false
	}
	v, ok, err := p.store.HGet(key, "last_ts")
	if err != nil || !ok {
		return false
	}
	existing, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return false
	}
	return existing >= lastTS.UnixNano()
}

// saveCheckpoint persists one vessel's history window through the
// (possibly chaos-wrapped) store, with retries; an exhausted save is
// counted as a checkpoint failure and dropped — the previous
// checkpoint, if any, stays in place.
func (p *Pipeline) saveCheckpoint(mmsi ais.MMSI, reports []ais.PositionReport) {
	if len(reports) > 0 && p.checkpointStale(checkpoint.Key(mmsi), reports[len(reports)-1].Timestamp) {
		return
	}
	hint := uint64(mmsi)
	if p.retryDo(hint, func() error {
		return checkpoint.Save(p.kv, checkpoint.Snapshot{MMSI: mmsi, Reports: reports})
	}) {
		p.ckptSaves.Inc(hint, 1)
	} else {
		p.ckptFailures.Inc(hint, 1)
	}
}

// saveCheckpointFields is the writer actors' fast path around
// saveCheckpoint: the key is pre-rendered and cached per vessel, and
// the snapshot is encoded through the writer's reused checkpoint
// encoder straight into the store's append-based HSetFields — one
// string conversion per snapshot instead of one per report field.
func (p *Pipeline) saveCheckpointFields(key string, mmsi ais.MMSI, reports []ais.PositionReport, enc *checkpoint.Encoder) {
	if len(reports) > 0 && p.checkpointStale(key, reports[len(reports)-1].Timestamp) {
		return
	}
	hint := uint64(mmsi)
	s := checkpoint.Snapshot{MMSI: mmsi, Reports: reports}
	if p.retryDo(hint, func() error {
		_, err := p.kv.HSetFields(key, enc.Fields(s))
		return err
	}) {
		p.ckptSaves.Inc(hint, 1)
	} else {
		p.ckptFailures.Inc(hint, 1)
	}
}

// loadCheckpoint rehydrates one vessel's history window, bounded by
// HistoryLimit. ok is false when there is no usable checkpoint — a
// corrupt or unreadable one degrades to a cold start and is counted.
func (p *Pipeline) loadCheckpoint(mmsi ais.MMSI) ([]ais.PositionReport, bool) {
	hint := uint64(mmsi)
	var snap checkpoint.Snapshot
	var found bool
	if !p.retryDo(hint, func() error {
		var err error
		snap, found, err = checkpoint.Load(p.kv, mmsi)
		return err
	}) {
		p.ckptFailures.Inc(hint, 1)
		return nil, false
	}
	if !found || len(snap.Reports) == 0 {
		return nil, false
	}
	reports := snap.Reports
	if len(reports) > p.cfg.HistoryLimit {
		reports = reports[len(reports)-p.cfg.HistoryLimit:]
	}
	p.ckptRestores.Inc(hint, 1)
	return reports, true
}

// Ingest routes one decoded AIS message into the pipeline: the entry
// point used by broker consumers and direct feeds alike.
func (p *Pipeline) Ingest(msg ais.Message, receivedAt time.Time) {
	if atomic.LoadInt32(&p.closed) == 1 {
		return
	}
	switch m := msg.(type) {
	case ais.StaticVoyage:
		// A foreign vessel's static document rides the forward topic to
		// its owner, whose shared cache needs it for the merge.
		if cl := p.cl; cl != nil && !cl.owns(uint64(m.MMSI)) {
			cl.forwardStatic(m)
			return
		}
		// Static info is cached in shared memory at ingestion, available
		// to every actor without a message round-trip (§3). Class B
		// type 24 messages arrive as partial documents (part A: name;
		// part B: dimensions), so new fields merge into the cache.
		if prev, ok := p.statics.Load(m.MMSI); ok {
			m = mergeStatic(prev.(ais.StaticVoyage), m)
		}
		p.statics.Store(m.MMSI, m)
		atomic.AddInt64(&p.ingested, 1)
		p.system.Send(p.vesselActor(m.MMSI), m)
	case ais.PositionReport:
		if cl := p.cl; cl != nil && !cl.owns(uint64(m.MMSI)) {
			cl.forwardPosition(m, receivedAt)
			return
		}
		p.messages.Inc(uint64(m.MMSI), 1)
		atomic.AddInt64(&p.ingested, 1)
		p.system.Send(p.vesselActor(m.MMSI), posMsg{report: m, receivedAt: receivedAt})
	}
}

// mergeStatic folds a possibly-partial static document (a type 24
// part) into the previously cached one: non-zero incoming fields win.
func mergeStatic(prev, next ais.StaticVoyage) ais.StaticVoyage {
	out := prev
	if next.Name != "" {
		out.Name = next.Name
	}
	if next.Callsign != "" {
		out.Callsign = next.Callsign
	}
	if next.IMO != 0 {
		out.IMO = next.IMO
	}
	if next.ShipType != 0 {
		out.ShipType = next.ShipType
	}
	if next.DimBow != 0 || next.DimStern != 0 {
		out.DimBow, out.DimStern = next.DimBow, next.DimStern
	}
	if next.DimPort != 0 || next.DimStarb != 0 {
		out.DimPort, out.DimStarb = next.DimPort, next.DimStarb
	}
	if next.Draught != 0 {
		out.Draught = next.Draught
	}
	if next.Destination != "" {
		out.Destination = next.Destination
	}
	return out
}

// IngestNMEA routes one raw AIVDM sentence into the pipeline,
// assembling multi-fragment messages internally. Invalid sentences are
// counted and dropped (a live receiver feed always carries corrupt
// lines). It returns an error only for malformed input, which callers
// may ignore for lossy feeds.
func (p *Pipeline) IngestNMEA(line string, receivedAt time.Time) error {
	s, err := ais.ParseSentence(line)
	if err != nil {
		atomic.AddInt64(&p.badSentences, 1)
		return err
	}
	msg, err := p.assembler.Push(s, receivedAt)
	if err != nil {
		atomic.AddInt64(&p.badSentences, 1)
		return err
	}
	if msg != nil {
		p.Ingest(msg, receivedAt)
	}
	return nil
}

// BadSentences returns how many undecodable NMEA lines were dropped.
func (p *Pipeline) BadSentences() int64 { return atomic.LoadInt64(&p.badSentences) }

// TimedMessage pairs a decoded AIS message with its receive time, the
// unit of batched ingestion.
type TimedMessage struct {
	Msg        ais.Message
	ReceivedAt time.Time
}

// batchGroup collects one vessel's messages within a batch so the
// mailbox lock and the scheduling decision are paid once per vessel per
// round instead of once per report.
type batchGroup struct {
	pid  *actor.PID
	msgs []any
}

// ingestBatcher is the reusable scratch state of IngestBatch: an
// MMSI->group index plus the group list itself. Pooled — steady-state
// batch ingestion allocates nothing for the grouping.
type ingestBatcher struct {
	index  map[ais.MMSI]int
	groups []batchGroup
}

var batcherPool = sync.Pool{
	New: func() any {
		return &ingestBatcher{index: make(map[ais.MMSI]int, 64)}
	},
}

// group returns the batch group of mmsi, creating (and route-resolving)
// it on first sight within the batch.
func (b *ingestBatcher) group(p *Pipeline, mmsi ais.MMSI) *batchGroup {
	if gi, ok := b.index[mmsi]; ok {
		return &b.groups[gi]
	}
	gi := len(b.groups)
	if gi < cap(b.groups) {
		b.groups = b.groups[:gi+1]
		b.groups[gi].pid = p.vesselActor(mmsi)
	} else {
		b.groups = append(b.groups, batchGroup{pid: p.vesselActor(mmsi)})
	}
	b.index[mmsi] = gi
	return &b.groups[gi]
}

// release clears message references (they are owned by mailboxes now)
// and returns the batcher to the pool.
func (b *ingestBatcher) release() {
	for i := range b.groups {
		g := &b.groups[i]
		g.pid = nil
		for j := range g.msgs {
			g.msgs[j] = nil
		}
		g.msgs = g.msgs[:0]
	}
	b.groups = b.groups[:0]
	clear(b.index)
	batcherPool.Put(b)
}

// IngestBatch routes one poll's worth of messages into the pipeline,
// grouping position reports by MMSI and delivering each vessel's group
// as one mailbox push (see actor.System.SendBatch). Per-vessel order is
// preserved; cross-vessel order was never observable (distinct actors).
// Static voyage documents are rare and take the single-message path.
// Returns how many messages were accepted.
func (p *Pipeline) IngestBatch(batch []TimedMessage) int {
	if atomic.LoadInt32(&p.closed) == 1 || len(batch) == 0 {
		return 0
	}
	b := batcherPool.Get().(*ingestBatcher)
	n := 0
	for _, tm := range batch {
		switch m := tm.Msg.(type) {
		case ais.StaticVoyage:
			p.Ingest(m, tm.ReceivedAt)
			n++
		case ais.PositionReport:
			// Foreign reports are accepted into the cluster (counted in
			// n) but processed by their owner, so they skip the local
			// batching entirely.
			if cl := p.cl; cl != nil && !cl.owns(uint64(m.MMSI)) {
				cl.forwardPosition(m, tm.ReceivedAt)
				n++
				continue
			}
			p.messages.Inc(uint64(m.MMSI), 1)
			atomic.AddInt64(&p.ingested, 1)
			g := b.group(p, m.MMSI)
			g.msgs = append(g.msgs, posMsg{report: m, receivedAt: tm.ReceivedAt})
			n++
		}
	}
	for i := range b.groups {
		g := &b.groups[i]
		if len(g.msgs) > 0 {
			p.system.SendBatch(g.pid, g.msgs)
		}
	}
	b.release()
	return n
}

// vesselActor returns (spawning on first contact) the actor of a MMSI.
// The hot path is one sharded int-keyed cache read; name building and
// registry hashing only happen on first contact or after passivation.
func (p *Pipeline) vesselActor(mmsi ais.MMSI) *actor.PID {
	if pid := p.vesselRoutes.get(uint64(mmsi)); pid != nil {
		return pid
	}
	return p.vesselActorSlow(mmsi)
}

func (p *Pipeline) vesselActorSlow(mmsi ais.MMSI) *actor.PID {
	pid, spawned := p.system.GetOrSpawn(vesselActorName(mmsi), actor.PropsFromProducer(func() actor.Actor {
		return newVesselActor(p, mmsi)
	}))
	if spawned {
		atomic.AddInt64(&p.vessels, 1)
	}
	p.vesselRoutes.put(uint64(mmsi), pid)
	return pid
}

// idleTimeout resolves the cell-passivation setting.
func (p *Pipeline) idleTimeout() time.Duration {
	switch {
	case p.cfg.CellIdleTimeout < 0:
		return 0 // never passivate
	case p.cfg.CellIdleTimeout == 0:
		return 5 * time.Minute
	default:
		return p.cfg.CellIdleTimeout
	}
}

// proximityActor returns the cell actor of a proximity cell, through
// the sharded route cache like vesselActor.
func (p *Pipeline) proximityActor(cell hexgrid.Cell) *actor.PID {
	if pid := p.proximityRoutes.get(uint64(cell)); pid != nil {
		return pid
	}
	return p.proximityActorSlow(cell)
}

func (p *Pipeline) proximityActorSlow(cell hexgrid.Cell) *actor.PID {
	pid, _ := p.system.GetOrSpawn(proximityActorName(cell), actor.PropsFromProducer(func() actor.Actor {
		a := &cellActor{
			p:          p,
			passivator: newPassivator(p.idleTimeout()),
		}
		// The micro-grid fast path is the default; the map-scan oracle
		// stays selectable for A/B runs (the grid pointer also gates the
		// candidate-funnel stats, which only the grid detector tracks).
		if p.cfg.UseScanDetectors {
			a.detector = events.NewProximityDetector(p.cfg.Proximity)
		} else {
			a.grid = events.NewGridProximityDetector(p.cfg.Proximity)
			a.detector = a.grid
		}
		return a
	}))
	p.proximityRoutes.put(uint64(cell), pid)
	return pid
}

// collisionActor returns the collision actor of a collision cell,
// through the sharded route cache like vesselActor.
func (p *Pipeline) collisionActor(cell hexgrid.Cell) *actor.PID {
	if pid := p.collisionRoutes.get(uint64(cell)); pid != nil {
		return pid
	}
	return p.collisionActorSlow(cell)
}

func (p *Pipeline) collisionActorSlow(cell hexgrid.Cell) *actor.PID {
	pid, _ := p.system.GetOrSpawn(collisionActorName(cell), actor.PropsFromProducer(func() actor.Actor {
		a := &collisionActor{
			p:          p,
			passivator: newPassivator(p.idleTimeout()),
		}
		if p.cfg.UseScanDetectors {
			a.detector = events.NewDetector(p.cfg.Collision, 10*time.Minute)
		} else {
			a.grid = events.NewGridDetector(p.cfg.Collision, 10*time.Minute)
			a.detector = a.grid
		}
		return a
	}))
	p.collisionRoutes.put(uint64(cell), pid)
	return pid
}

// Static returns the cached static voyage data of a vessel.
func (p *Pipeline) Static(mmsi ais.MMSI) (ais.StaticVoyage, bool) {
	v, ok := p.statics.Load(mmsi)
	if !ok {
		return ais.StaticVoyage{}, false
	}
	return v.(ais.StaticVoyage), true
}

// observeProcessing records one vessel-actor processing duration on the
// shard selected by hint (the MMSI). The observation is two padded
// atomic adds plus one striped-mutex quantile insert; the Figure 6
// series itself is extended by the background sampler, so the hot path
// holds no shared lock. The moving average consequently windows over
// sampler drains rather than single messages — the same recent-history
// mean at a coarser granularity.
func (p *Pipeline) observeProcessing(hint uint64, d time.Duration) {
	p.latency.Observe(hint, d)
	p.procAcc.Add(hint, int64(d))
}

// Stats summarises a running pipeline.
type Stats struct {
	Messages   int64
	Forecasts  int64
	LiveActors int64
	Latency    metrics.Snapshot
	// InferLatency is the model-inference slice of Latency: the time
	// vessel actors spend inside ForecastTrack for forecasts that
	// actually ran the model.
	InferLatency metrics.Snapshot
	Events       int64
	DeadLetter   uint64
	// Durability counters: the retry loop's per-outcome totals and the
	// checkpoint lifecycle (see DESIGN.md §9).
	RetryAttempts      int64
	RetryRetried       int64
	RetryExhausted     int64
	CheckpointSaves    int64
	CheckpointRestores int64
	CheckpointFailures int64
	// ProximityDetection and CollisionDetection are the event-detection
	// layer's per-family telemetry: detector update timing, the
	// candidate-pair funnel and live tracked-entry occupancy across all
	// cells (see DESIGN.md §16).
	ProximityDetection DetectionStats
	CollisionDetection DetectionStats
	// Cluster is the worker's cluster counters, nil in single-process
	// mode.
	Cluster *ClusterStats
	// Train is the process-wide training recorder snapshot: non-zero
	// only in processes that have trained (or retrained) a model.
	Train metrics.TrainStats
	// Lifecycle is the process-wide model-lifecycle snapshot: non-zero
	// only in processes running the background trainer.
	Lifecycle metrics.LifecycleStats
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Messages:     p.messages.Value(),
		Forecasts:    p.forecasts.Value(),
		LiveActors:   p.system.LiveActors(),
		Latency:      p.latency.Snapshot(),
		InferLatency: p.inferLat.Snapshot(),
		Events:       p.log.Total(),
		DeadLetter:   p.system.StatsSnapshot().DeadLetters,

		RetryAttempts:      p.retryAttempts.Value(),
		RetryRetried:       p.retryRetried.Value(),
		RetryExhausted:     p.retryExhausted.Value(),
		CheckpointSaves:    p.ckptSaves.Value(),
		CheckpointRestores: p.ckptRestores.Value(),
		CheckpointFailures: p.ckptFailures.Value(),
		ProximityDetection: p.proxDet.snapshot(),
		CollisionDetection: p.collDet.snapshot(),
		Cluster:            p.clusterStats(),
		Train:              metrics.Training.Snapshot(),
		Lifecycle:          metrics.Lifecycle.Snapshot(),
	}
}

// RouteModel returns the L-VRF model currently serving /api/route (nil
// when none is configured or published yet).
func (p *Pipeline) RouteModel() *lvrf.Model { return p.routeModel.Load() }

// SetRouteModel atomically replaces the serving L-VRF model — the
// lifecycle trainer's lane-graph hot-swap. In-flight requests keep the
// model they already loaded.
func (p *Pipeline) SetRouteModel(m *lvrf.Model) { p.routeModel.Store(m) }

// Series returns the Figure 6 samples gathered so far. Pending
// observations are folded in first so a caller right after Drain sees
// the complete series.
func (p *Pipeline) Series() []Sample {
	p.drainSample()
	p.procMu.Lock()
	defer p.procMu.Unlock()
	out := make([]Sample, len(p.series))
	copy(out, p.series)
	return out
}

// RecordConsumer is the consumer surface ConsumeLoop drains: both
// *broker.Consumer and the chaos fault-injection wrapper satisfy it.
type RecordConsumer interface {
	Poll(max int, wait time.Duration) []broker.Record
	Commit()
}

// ConsumeLoop drains a broker consumer into the pipeline until the
// consumer closes (nil poll) or the pipeline shuts down. Records must
// carry ais.Message values. A panic out of the consume round (an
// injected chaos fault, or a genuinely broken consumer) is recovered
// and retried with the pipeline's backoff policy, and empty batches
// back off the same way, so a faulting broker degrades ingest instead
// of wedging or spinning it. Because faulted rounds never commit, every
// record is redelivered once the fault clears (at-least-once).
func (p *Pipeline) ConsumeLoop(c RecordConsumer, pollWait time.Duration) int {
	n := 0
	faults := 0
	for atomic.LoadInt32(&p.closed) == 0 {
		got, closed, err := p.consumeRound(c, pollWait)
		n += got
		if closed {
			return n
		}
		if err != nil || got == 0 {
			if err != nil {
				// A recovered panic is one failed attempt of the (endless)
				// consume operation; it is retried, never exhausted.
				p.retryAttempts.Inc(uint64(faults), 1)
			}
			if faults < 10 {
				faults++
			}
			time.Sleep(p.retryP.Delay(faults))
			continue
		}
		faults = 0
	}
	return n
}

// timedBatchPool recycles the per-round record->TimedMessage staging
// slice of consumeRound (concurrent ConsumeLoops each draw their own).
var timedBatchPool = sync.Pool{
	New: func() any {
		s := make([]TimedMessage, 0, 512)
		return &s
	},
}

// consumeRound runs one poll/ingest/commit round, converting a panic
// into an error so the loop above can back off and retry. The round
// stages the poll into a TimedMessage batch and hands it to
// IngestBatch, so each vessel's reports in the poll cost one mailbox
// push instead of one per report. Commit still only runs after the
// whole batch was enqueued (at-least-once is untouched: a faulted
// round never commits and redelivers).
func (p *Pipeline) consumeRound(c RecordConsumer, pollWait time.Duration) (ingested int, closed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: consume round panicked: %v", r)
		}
	}()
	recs := c.Poll(512, pollWait)
	if recs == nil {
		return ingested, true, nil
	}
	bp := timedBatchPool.Get().(*[]TimedMessage)
	batch := (*bp)[:0]
	for _, r := range recs {
		if msg, ok := r.Value.(ais.Message); ok {
			batch = append(batch, TimedMessage{Msg: msg, ReceivedAt: r.Timestamp})
		}
	}
	ingested = p.IngestBatch(batch)
	for i := range batch {
		batch[i].Msg = nil
	}
	*bp = batch[:0]
	timedBatchPool.Put(bp)
	c.Commit()
	return ingested, false, nil
}

// Drain waits until the actor system has processed everything enqueued
// so far, up to timeout. Quiescence requires both that the processed
// counter stops moving AND that no mailbox still holds queued messages:
// a stalled-but-backlogged system (e.g. one slow forecaster with a deep
// mailbox) must not be declared drained just because throughput paused.
// A pipeline that never ingested anything is already drained and
// returns immediately; once something was ingested, the processed
// counter must have moved off zero before quiescence counts, so a
// just-popped in-flight first message cannot fake an idle system.
//
// In cluster mode, quiescence additionally requires the forward queue
// to be empty: a report accepted for a foreign partition is in flight
// until the forwarding producer has written it to the broker, even
// though no local mailbox holds it. (What the remote owner does with
// it is its own Drain's business.)
func (p *Pipeline) Drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	var last uint64
	for time.Now().Before(deadline) {
		cur := p.system.StatsSnapshot().MessagesProcessed
		idle := atomic.LoadInt64(&p.ingested) == 0
		if cur == last && (cur > 0 || idle) &&
			p.system.QueuedMessages() == 0 && p.pendingForwards() == 0 {
			return
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}
}

// Shutdown stops the actor system. In cluster mode the worker's
// inbound consumers stop first (no new foreign records land mid-stop),
// the actors drain — any fan-out they still forward is flushed by the
// forwarder — and the worker then leaves the cluster so its partitions
// reassign immediately.
func (p *Pipeline) Shutdown(timeout time.Duration) {
	if !atomic.CompareAndSwapInt32(&p.closed, 0, 1) {
		return
	}
	if p.cl != nil {
		p.cl.closeConsumers()
	}
	close(p.samplerStop)
	<-p.samplerDone
	p.system.Shutdown(timeout)
	if p.cl != nil {
		p.cl.shutdown()
	}
	if p.feedDetach != nil {
		p.feedDetach()
	}
	if p.cfg.Store == nil {
		p.store.Close()
	}
}

// Feed returns the live-feed hub, or nil when not configured.
func (p *Pipeline) Feed() *feed.Hub { return p.cfg.Feed }

// Views returns the read-side serving layer, or nil when not
// configured.
func (p *Pipeline) Views() *views.Views { return p.cfg.Views }

// DecodeFeedRecord converts one record of the seatwin-states /
// seatwin-events output topics into a feed hub input — the adapter for
// running a feed.Hub against the durable broker instead of embedded:
//
//	go hub.ConsumeLoop(statesConsumer, pipeline.DecodeFeedRecord, time.Hour)
func DecodeFeedRecord(r broker.Record) (any, bool) {
	switch v := r.Value.(type) {
	case StateOutput:
		return feed.State{
			MMSI: v.Report.MMSI,
			Lat:  v.Report.Lat, Lon: v.Report.Lon,
			SOG: v.Report.SOG, COG: v.Report.COG,
			Status:   v.Report.Status.String(),
			TS:       v.Report.Timestamp,
			Forecast: v.Forecast,
		}, true
	case events.Event:
		return v, true
	default:
		return nil, false
	}
}

package feed

import "sync"

// Policy selects what a subscriber's ring does when it is full. The
// choice is per-subscription: position tickers want drop-oldest, state
// mirrors want conflate-by-key (only the newest frame per vessel
// matters), and strict consumers that must see every frame want to be
// disconnected rather than silently lose data.
type Policy int

const (
	// PolicyDropOldest evicts the oldest buffered frame to make room.
	PolicyDropOldest Policy = iota
	// PolicyConflate replaces the buffered frame with the same key in
	// place (keyless frames fall back to drop-oldest on overflow).
	PolicyConflate
	// PolicyDisconnect force-closes the subscription on overflow.
	PolicyDisconnect
)

// String returns the wire name of the policy ("drop", "conflate",
// "disconnect").
func (p Policy) String() string {
	switch p {
	case PolicyConflate:
		return "conflate"
	case PolicyDisconnect:
		return "disconnect"
	default:
		return "drop"
	}
}

// ParsePolicy resolves a wire name; unknown names report false.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "", "drop", "drop-oldest":
		return PolicyDropOldest, true
	case "conflate":
		return PolicyConflate, true
	case "disconnect":
		return PolicyDisconnect, true
	default:
		return 0, false
	}
}

// ring is a bounded single-consumer frame queue. push is called by the
// hub's publisher (possibly several goroutines) and is O(1) under the
// ring mutex — it never waits on the consumer, which is the property
// that keeps a slow client out of the hot path. pop blocks the
// consumer until a frame or closure arrives.
type ring struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []frame
	start  int // absolute index of the oldest buffered frame
	count  int
	byKey  map[string]int // conflation key -> absolute index
	policy Policy
	closed bool
	err    error

	// Cumulative overflow accounting (under mu). The hub tracks these
	// globally through push's return values; the relay tier reads them
	// per ring to report how many upstream frames its pump never saw.
	nConflated int64
	nDropped   int64
}

func newRing(capacity int, policy Policy) *ring {
	r := &ring{items: make([]frame, capacity), policy: policy}
	if policy == PolicyConflate {
		r.byKey = make(map[string]int, capacity)
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// push enqueues a frame. It reports whether the frame was accepted,
// whether it conflated an already-buffered frame in place, and whether
// an older frame was evicted to make room. pushed=false means the ring
// overflowed under PolicyDisconnect and the subscriber must be closed.
func (r *ring) push(f frame) (pushed, conflated, droppedOld bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return true, false, false // swallowed; the subscriber is already gone
	}
	if r.policy == PolicyConflate && f.key != "" {
		if idx, ok := r.byKey[f.key]; ok && idx >= r.start {
			r.items[idx%len(r.items)] = f
			r.nConflated++
			return true, true, false
		}
	}
	if r.count == len(r.items) {
		if r.policy == PolicyDisconnect {
			return false, false, false
		}
		old := r.items[r.start%len(r.items)]
		if r.byKey != nil && old.key != "" && r.byKey[old.key] == r.start {
			delete(r.byKey, old.key)
		}
		r.start++
		r.count--
		r.nDropped++
		droppedOld = true
	}
	abs := r.start + r.count
	r.items[abs%len(r.items)] = f
	if r.byKey != nil && f.key != "" {
		r.byKey[f.key] = abs
	}
	r.count++
	r.cond.Signal()
	return true, false, droppedOld
}

// pop dequeues the oldest frame, blocking until one is available. ok is
// false once the ring is closed (closure discards any buffered frames:
// a disconnect, hub shutdown or client Close all stop delivery at once).
func (r *ring) pop() (f frame, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 && !r.closed {
		r.cond.Wait()
	}
	if r.count == 0 {
		return frame{}, false
	}
	f = r.items[r.start%len(r.items)]
	r.items[r.start%len(r.items)] = frame{} // release the payload bytes
	if r.byKey != nil && f.key != "" && r.byKey[f.key] == r.start {
		delete(r.byKey, f.key)
	}
	r.start++
	r.count--
	return f, true
}

// closeNow closes the ring and discards buffered frames, waking any
// blocked consumer.
func (r *ring) closeNow(err error) {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.err = err
		r.count = 0
		r.byKey = nil
		for i := range r.items {
			r.items[i] = frame{}
		}
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// overflowStats returns the cumulative conflate/evict counts.
func (r *ring) overflowStats() (conflated, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nConflated, r.nDropped
}

// closeErr returns the closure reason, nil while open.
func (r *ring) closeErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

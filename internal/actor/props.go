package actor

// Producer constructs a fresh actor instance; it is invoked at spawn
// time and again on every restart, so all actor state built inside the
// producer is reset by a restart.
type Producer func() Actor

// SupervisionDirective selects how a panicking actor is handled.
type SupervisionDirective int

const (
	// DirectiveRestart discards the actor instance and re-creates it
	// from its Producer, preserving the mailbox.
	DirectiveRestart SupervisionDirective = iota
	// DirectiveStop terminates the actor.
	DirectiveStop
	// DirectiveResume keeps the current instance and continues with the
	// next message; the failing message is dropped.
	DirectiveResume
)

// SupervisorStrategy decides the fate of an actor that panicked.
type SupervisorStrategy struct {
	// Directive applied on failure.
	Directive SupervisionDirective
	// MaxRestarts bounds restarts within Window; when exceeded the
	// actor is stopped instead. Zero means unlimited.
	MaxRestarts int
	// WindowSeconds is the sliding window for MaxRestarts (seconds; 0
	// means "ever").
	WindowSeconds int
}

// DefaultStrategy restarts a failing actor up to 10 times per minute.
var DefaultStrategy = SupervisorStrategy{
	Directive:     DirectiveRestart,
	MaxRestarts:   10,
	WindowSeconds: 60,
}

// Props describes how to create and run an actor.
type Props struct {
	producer   Producer
	strategy   SupervisorStrategy
	throughput int
}

// PropsFromProducer builds Props from an actor factory.
func PropsFromProducer(p Producer) *Props {
	return &Props{producer: p, strategy: DefaultStrategy}
}

// PropsOf builds Props for a stateless receive function.
func PropsOf(f ReceiveFunc) *Props {
	return PropsFromProducer(func() Actor { return f })
}

// WithStrategy overrides the supervision strategy.
func (p *Props) WithStrategy(s SupervisorStrategy) *Props {
	q := *p
	q.strategy = s
	return &q
}

// WithThroughput overrides the number of messages an actor may process
// per scheduling run before yielding (default inherited from System).
func (p *Props) WithThroughput(n int) *Props {
	q := *p
	q.throughput = n
	return &q
}

package feed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// BenchmarkFeedFanout5k drives ≥5,000 concurrent subscribers — a mix
// of per-vessel, region and event-class topics — through Hub.Publish.
// Every subscriber runs a live consuming goroutine; the publisher must
// never block on any of them (rings absorb overload per policy). The
// reported metrics are the hub's own instrumentation: deliveries per
// published frame and the per-publish fan-out p99.
func BenchmarkFeedFanout5k(b *testing.B) {
	benchmarkFanout(b, 5000)
}

// BenchmarkFeedFanout20k is the scale headroom check.
func BenchmarkFeedFanout20k(b *testing.B) {
	benchmarkFanout(b, 20000)
}

func benchmarkFanout(b *testing.B, nSubs int) {
	hub := NewHub(Options{RegionResolution: 7})
	defer hub.Close()

	const nVessels = 64
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	// Vessel positions spread across a handful of region cells so the
	// region topics see real fan-out.
	positions := make([]geo.Point, nVessels)
	cells := make([]string, nVessels)
	for i := range positions {
		positions[i] = geo.Point{Lat: base.Lat + float64(i%8)*0.1, Lon: base.Lon + float64(i/8%8)*0.1}
		cells[i] = hexgrid.LatLonToCell(positions[i], 7).String()
	}

	var received atomic.Int64
	var wg sync.WaitGroup
	policies := []Policy{PolicyDropOldest, PolicyConflate, PolicyDropOldest}
	for i := 0; i < nSubs; i++ {
		var topics []string
		switch i % 5 {
		case 0, 1: // 40% vessel watchers
			topics = []string{TopicVesselPrefix + ais.MMSI(237000000+i%nVessels).String()}
		case 2, 3: // 40% region watchers
			topics = []string{TopicRegionPrefix + cells[i%nVessels]}
		default: // 20% event watchers
			topics = []string{TopicProximity, TopicCollision, TopicGap}
		}
		sub, err := hub.Subscribe(topics, SubOptions{Buffer: 64, Policy: policies[i%len(policies)]})
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := sub.Recv(); !ok {
					return
				}
				received.Add(1)
			}
		}()
	}
	if got := hub.Snapshot().Subscribers; got != int64(nSubs) {
		b.Fatalf("subscribers %d, want %d", got, nSubs)
	}

	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	var maxPublish time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % nVessels
		start := time.Now()
		hub.PublishState(State{
			MMSI: ais.MMSI(237000000 + v),
			Lat:  positions[v].Lat, Lon: positions[v].Lon,
			SOG: 12, COG: 90, TS: ts,
		})
		if i%50 == 0 {
			hub.PublishEvent(events.Event{
				Kind: events.KindProximity,
				A:    ais.MMSI(237000000 + v), B: ais.MMSI(237000000 + (v+1)%nVessels),
				At: ts, Pos: positions[v], Meters: 300,
			})
		}
		if d := time.Since(start); d > maxPublish {
			maxPublish = d
		}
	}
	b.StopTimer()

	s := hub.Snapshot()
	if s.Disconnected > 0 {
		b.Fatalf("benchmark subscribers use non-disconnecting policies, yet %d disconnected", s.Disconnected)
	}
	// "Zero blocking" sanity: a publish is bounded fan-out work, never a
	// wait on consumers. Even heavily loaded it stays far under the
	// seconds a stalled consumer would cost.
	if maxPublish > 2*time.Second {
		b.Fatalf("a publish took %v — publisher blocked on consumers", maxPublish)
	}
	if s.Published > 0 {
		b.ReportMetric(float64(s.Fanned+s.Conflated)/float64(s.Published), "deliveries/frame")
	}
	b.ReportMetric(s.FanoutP99.Seconds()*1e6, "fanout-p99-µs")
	b.ReportMetric(float64(maxPublish.Microseconds()), "max-publish-µs")

	hub.Close()
	wg.Wait()
	if testing.Verbose() {
		fmt.Printf("fanout: %d subs, %d published, %d delivered (%d drained), %d dropped, %d conflated\n",
			nSubs, s.Published, s.Fanned, received.Load(), s.Dropped, s.Conflated)
	}
}

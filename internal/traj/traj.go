// Package traj implements the preprocessing pipeline of §4.2 and §6.1:
// 30-second downsampling of irregular AIS streams, segmentation of
// vessel trajectories into fixed-size windows of 20 past spatiotemporal
// displacements, and interpolation of the future track into six 5-minute
// target transitions up to the 30-minute horizon.
package traj

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// Config fixes the tensor geometry. The defaults are the paper's.
type Config struct {
	InputSteps  int           // past displacements per window (20)
	Horizons    int           // future transitions (6)
	HorizonStep time.Duration // spacing of future transitions (5 min)
	Downsample  time.Duration // minimum spacing of aggregated inputs (30 s)
	// MaxInputGap drops windows whose input span contains a silence
	// longer than this; forecasting across a 2-hour outage from a
	// 20-point window is meaningless.
	MaxInputGap time.Duration
	// Stride advances the window start by this many downsampled points
	// (1 = maximally overlapping windows).
	Stride int
}

// DefaultConfig returns the paper's preprocessing parameters.
func DefaultConfig() Config {
	return Config{
		InputSteps:  20,
		Horizons:    6,
		HorizonStep: 5 * time.Minute,
		Downsample:  30 * time.Second,
		MaxInputGap: 10 * time.Minute,
		Stride:      5,
	}
}

// Feature scaling: fixed constants keep inputs O(1) without
// dataset-dependent statistics, so a model transfers across regions.
const (
	// DegScale multiplies the (dlat, dlon) target transitions and
	// divides model outputs back to degrees.
	DegScale = 50.0
	// DtScale divides the dt feature (seconds to minutes).
	DtScale = 60.0
	// VelScale multiplies the velocity features (degrees per minute).
	// A vessel at 13 kn moves ~0.0033 deg/min, so typical features are
	// O(1). Feeding rates instead of raw displacements spares the
	// network from dividing by the irregular inter-report interval.
	VelScale = 300.0
)

// Downsample aggregates reports so consecutive kept reports are at
// least minGap apart — the paper's 30-second minimum rate (§4.2).
func Downsample(reports []ais.PositionReport, minGap time.Duration) []ais.PositionReport {
	if len(reports) == 0 {
		return nil
	}
	return downsampleAppend(make([]ais.PositionReport, 0, len(reports)), reports, minGap)
}

// downsampleAppend is Downsample into a caller-provided buffer: kept
// reports are appended to dst (usually dst[:0] of a reused slice).
func downsampleAppend(dst []ais.PositionReport, reports []ais.PositionReport, minGap time.Duration) []ais.PositionReport {
	if len(reports) == 0 {
		return dst
	}
	dst = append(dst, reports[0])
	last := reports[0].Timestamp
	for _, r := range reports[1:] {
		if r.Timestamp.Sub(last) >= minGap {
			dst = append(dst, r)
			last = r.Timestamp
		}
	}
	return dst
}

// Window is one training/evaluation example cut from a trajectory.
type Window struct {
	MMSI ais.MMSI
	// Input is InputSteps rows of (dlat*DegScale, dlon*DegScale,
	// dt/DtScale) between consecutive downsampled reports.
	Input [][]float64
	// Target is 2*Horizons values: per-interval (dlat, dlon) * DegScale.
	Target []float64
	// Anchor state at the window's last input report.
	LastPos  geo.Point
	LastTime time.Time
	LastSOG  float64 // knots, for the kinematic baseline
	LastCOG  float64 // degrees, for the kinematic baseline
	// Truth holds the interpolated ground-truth positions at each
	// horizon, for displacement-error scoring.
	Truth []geo.Point
}

// interpolateAt linearly interpolates the raw (pre-downsampling) track
// at time t. Reports must be time-ordered.
func interpolateAt(reports []ais.PositionReport, t time.Time) (geo.Point, bool) {
	n := len(reports)
	if n == 0 || t.Before(reports[0].Timestamp) || t.After(reports[n-1].Timestamp) {
		return geo.Point{}, false
	}
	i := sort.Search(n, func(i int) bool { return !reports[i].Timestamp.Before(t) })
	if i == 0 {
		return geo.Point{Lat: reports[0].Lat, Lon: reports[0].Lon}, true
	}
	a, b := reports[i-1], reports[i]
	span := b.Timestamp.Sub(a.Timestamp).Seconds()
	pa := geo.Point{Lat: a.Lat, Lon: a.Lon}
	pb := geo.Point{Lat: b.Lat, Lon: b.Lon}
	if span <= 0 {
		return pa, true
	}
	// Long silences make linear interpolation fiction; refuse them.
	if span > 20*60 {
		return geo.Point{}, false
	}
	f := t.Sub(a.Timestamp).Seconds() / span
	return geo.Interpolate(pa, pb, f), true
}

// BuildWindows cuts one vessel's report stream into windows. Reports
// must be time-ordered; they are downsampled internally.
func BuildWindows(reports []ais.PositionReport, cfg Config) []Window {
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	ds := Downsample(reports, cfg.Downsample)
	need := cfg.InputSteps + 1
	if len(ds) < need {
		return nil
	}
	var out []Window
	for start := 0; start+need <= len(ds); start += cfg.Stride {
		w, ok := buildOne(ds[start:start+need], reports, cfg)
		if ok {
			out = append(out, w)
		}
	}
	return out
}

func buildOne(seg []ais.PositionReport, raw []ais.PositionReport, cfg Config) (Window, bool) {
	last := seg[len(seg)-1]
	w := Window{
		MMSI:     last.MMSI,
		LastPos:  geo.Point{Lat: last.Lat, Lon: last.Lon},
		LastTime: last.Timestamp,
		LastSOG:  last.SOG,
		LastCOG:  last.COG,
	}
	w.Input = make([][]float64, cfg.InputSteps)
	for i := 0; i < cfg.InputSteps; i++ {
		row, ok := featureRow(seg[i], seg[i+1], cfg.MaxInputGap)
		if !ok {
			return Window{}, false
		}
		w.Input[i] = row
	}

	// Targets: interpolate the raw track at each horizon and express it
	// as per-interval displacement transitions.
	w.Target = make([]float64, 0, 2*cfg.Horizons)
	w.Truth = make([]geo.Point, 0, cfg.Horizons)
	prev := w.LastPos
	for h := 1; h <= cfg.Horizons; h++ {
		t := last.Timestamp.Add(time.Duration(h) * cfg.HorizonStep)
		p, ok := interpolateAt(raw, t)
		if !ok {
			return Window{}, false
		}
		dLat, dLon := geo.Displacement(prev, p)
		w.Target = append(w.Target, dLat*DegScale, dLon*DegScale)
		w.Truth = append(w.Truth, p)
		prev = p
	}
	return w, true
}

// PredictedPositions converts a model output vector (2*Horizons scaled
// transitions) into absolute positions starting from the anchor.
func PredictedPositions(anchor geo.Point, output []float64) []geo.Point {
	return PredictedPositionsInto(nil, anchor, output)
}

// PredictedPositionsInto is PredictedPositions into a caller-provided
// buffer: dst is resized to len(output)/2 positions, reusing its
// backing array when it has the capacity. It returns the filled slice.
func PredictedPositionsInto(dst []geo.Point, anchor geo.Point, output []float64) []geo.Point {
	n := len(output) / 2
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]geo.Point, n)
	}
	cur := anchor
	for i := 0; i < n; i++ {
		cur = geo.Offset(cur, output[2*i]/DegScale, output[2*i+1]/DegScale)
		dst[i] = cur
	}
	return dst
}

// MinLiveReports is the fewest downsampled reports a live vessel needs
// before a model input can be built (shorter histories are left-padded
// up to the fixed tensor size, echoing the fixed-size-input adaptation
// of §4.2).
const MinLiveReports = 6

// InputFromReports converts the most recent reports of a live vessel
// into a model input sequence (the on-stream path of the vessel actor)
// plus the anchor report predictions must be applied from: the last
// report that entered the input, which can trail the newest raw report
// by up to the downsampling interval. Histories shorter than steps+1
// downsampled reports are left-padded by repeating the earliest feature
// row; below MinLiveReports ok is false.
func InputFromReports(reports []ais.PositionReport, steps int, downsample time.Duration) (input [][]float64, anchor ais.PositionReport, ok bool) {
	return (&InputBuffer{}).InputFromReports(reports, steps, downsample)
}

// InputBuffer holds the scratch storage of InputFromReports — the
// downsampling buffer, the row headers and one flat backing array for
// every feature row — so the vessel-actor hot path can rebuild a model
// input on every report without allocating. Buffers are not safe for
// concurrent use; draw one per goroutine from GetInputBuffer, or keep
// one per actor. The input returned by InputFromReports aliases the
// buffer and is valid until the next call or until the buffer is
// returned to the pool.
type InputBuffer struct {
	ds   []ais.PositionReport
	rows [][]float64
	flat []float64
}

var inputPool = sync.Pool{New: func() any { return new(InputBuffer) }}

// GetInputBuffer draws a reusable input buffer from a process-wide pool.
func GetInputBuffer() *InputBuffer { return inputPool.Get().(*InputBuffer) }

// PutInputBuffer returns a buffer to the pool. The caller must be done
// with every input slice the buffer produced.
func PutInputBuffer(b *InputBuffer) { inputPool.Put(b) }

// InputFromReports is the package-level InputFromReports built inside
// the receiver's reused storage: after the buffer has warmed up to the
// caller's history length it performs no allocations.
func (b *InputBuffer) InputFromReports(reports []ais.PositionReport, steps int, downsample time.Duration) (input [][]float64, anchor ais.PositionReport, ok bool) {
	b.ds = downsampleAppend(b.ds[:0], reports, downsample)
	ds := b.ds
	if len(ds) < MinLiveReports {
		return nil, ais.PositionReport{}, false
	}
	if len(ds) > steps+1 {
		ds = ds[len(ds)-steps-1:]
	}
	if cap(b.rows) >= steps {
		b.rows = b.rows[:steps]
	} else {
		b.rows = make([][]float64, steps)
	}
	if cap(b.flat) >= 3*steps {
		b.flat = b.flat[:3*steps]
	} else {
		b.flat = make([]float64, 3*steps)
	}
	// Build the real rows right-aligned in the fixed tensor, then
	// left-pad by repeating the earliest real row (sharing its storage,
	// exactly as the allocating path shares the prepended row header).
	n := len(ds) - 1
	pad := steps - n
	for i := 0; i < n; i++ {
		row := b.flat[3*(pad+i) : 3*(pad+i)+3]
		if !featureRowInto(row, ds[i], ds[i+1], 0) {
			return nil, ais.PositionReport{}, false
		}
		b.rows[pad+i] = row
	}
	for j := 0; j < pad; j++ {
		b.rows[j] = b.rows[pad]
	}
	return b.rows, ds[len(ds)-1], true
}

// featureRow builds one input row from two consecutive reports:
// (vlat*VelScale, vlon*VelScale, dt/DtScale) where the velocities are
// in degrees per minute. maxGap of 0 disables the gap check.
func featureRow(a, b ais.PositionReport, maxGap time.Duration) ([]float64, bool) {
	row := make([]float64, 3)
	if !featureRowInto(row, a, b, maxGap) {
		return nil, false
	}
	return row, true
}

// featureRowInto writes the feature row for the report pair into dst,
// which must have length 3. It reports whether the pair is usable.
func featureRowInto(dst []float64, a, b ais.PositionReport, maxGap time.Duration) bool {
	dt := b.Timestamp.Sub(a.Timestamp)
	if dt <= 0 || (maxGap > 0 && dt > maxGap) {
		return false
	}
	dLat, dLon := geo.Displacement(
		geo.Point{Lat: a.Lat, Lon: a.Lon},
		geo.Point{Lat: b.Lat, Lon: b.Lon})
	mins := dt.Minutes()
	dst[0] = dLat / mins * VelScale
	dst[1] = dLon / mins * VelScale
	dst[2] = dt.Seconds() / DtScale
	return true
}

// Split shuffles windows with the seed and divides them into
// train/validation/test fractions (the paper uses 50/25/25).
func Split(windows []Window, trainFrac, valFrac float64, seed int64) (train, val, test []Window) {
	idx := make([]int, len(windows))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nTrain := int(float64(len(idx)) * trainFrac)
	nVal := int(float64(len(idx)) * valFrac)
	for i, id := range idx {
		switch {
		case i < nTrain:
			train = append(train, windows[id])
		case i < nTrain+nVal:
			val = append(val, windows[id])
		default:
			test = append(test, windows[id])
		}
	}
	return train, val, test
}

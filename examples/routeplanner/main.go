// Routeplanner: the Figure 4a/4b view — train the EnvClus*-style
// long-term route forecasting model on historical trips mined from a
// simulated multi-day recording, forecast the route between two ports
// for different vessel profiles, and print the Patterns-of-Life
// statistics of the lane.
package main

import (
	"fmt"
	"log"
	"time"

	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/lvrf"
)

func main() {
	// 1. Record several simulated days of Aegean traffic so vessels
	// complete multiple port-to-port voyages.
	ds := fleetsim.Record(geo.AegeanSea, 150, 72*time.Hour, 5)
	log.Printf("recorded %d messages from %d vessels", ds.Messages(), len(ds.Tracks))

	// 2. Mine complete trips out of the tracks.
	ports := map[string]geo.Point{}
	for _, p := range fleetsim.PortsWithin(geo.AegeanSea) {
		ports[p.Name] = p.Pos
	}
	var trips []lvrf.Trip
	for _, tr := range ds.Tracks {
		in := lvrf.TrackInput{
			MMSI: uint32(tr.Vessel.MMSI),
			Features: lvrf.Features{
				ShipType: uint8(tr.Vessel.Profile.Type),
				Length:   float64(tr.Vessel.Profile.Length),
				Draught:  tr.Vessel.Profile.Draught,
			},
		}
		for _, r := range tr.Reports {
			in.Positions = append(in.Positions, geo.Point{Lat: r.Lat, Lon: r.Lon})
			in.Times = append(in.Times, r.Timestamp)
		}
		trips = append(trips, lvrf.ExtractTrips(in, ports, 6000)...)
	}
	log.Printf("extracted %d complete port-to-port trips", len(trips))

	// 3. Train the per-OD-pair lane graphs.
	model := lvrf.Train(trips, ports, lvrf.DefaultConfig())
	pairs := model.Pairs()
	log.Printf("learned lanes for %d port pairs", len(pairs))
	if len(pairs) == 0 {
		log.Fatal("no lanes learned — increase the recording duration")
	}

	// 4. Forecast a route on the busiest learned pair for two vessel
	// profiles; junction classifiers may route them differently.
	var origin, dest string
	best := 0
	for _, pr := range pairs {
		if pol, err := model.PatternsOfLife(pr[0], pr[1]); err == nil && pol.Trips > best {
			best = pol.Trips
			origin, dest = pr[0], pr[1]
		}
	}
	fmt.Printf("\nroute forecast %s -> %s\n", origin, dest)
	cargo := lvrf.Features{ShipType: 70, Length: 190, Draught: 10.5}
	path, err := model.ForecastRoute(origin, dest, cargo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cargo path, %d waypoints:\n", len(path))
	for i := 0; i < len(path); i += max(1, len(path)/8) {
		fmt.Printf("    %2d. %s\n", i, path[i])
	}
	fmt.Printf("    %2d. %s\n", len(path)-1, path[len(path)-1])

	// 5. Patterns of Life: the aggregated lane statistics (Figure 4b).
	pol, err := model.PatternsOfLife(origin, dest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatterns of life, %s -> %s:\n", origin, dest)
	fmt.Printf("  historical trips    %d (by %d distinct vessels)\n", pol.Trips, pol.DistinctMMSIs)
	fmt.Printf("  mean duration       %v (std %v)\n",
		pol.MeanDuration.Round(time.Minute), pol.StdDuration.Round(time.Minute))
	fmt.Printf("  mean sailed length  %.1f NM\n", pol.MeanLengthM/1852)
	fmt.Printf("  mean speed          %.1f kn\n", pol.MeanSpeedKn)
	fmt.Printf("  vessel types        %v\n", pol.TypeHistogram)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package views

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// manual returns a registry without a background refresher: tests drive
// Refresh themselves.
func manual(t *testing.T, cfg Config) *Views {
	t.Helper()
	cfg.RefreshInterval = -1
	v := New(cfg)
	t.Cleanup(v.Close)
	return v
}

func state(m ais.MMSI, lat, lon, sog float64, ts time.Time) VesselState {
	return VesselState{
		MMSI: m, Name: "V" + m.String(), Lat: lat, Lon: lon,
		SOG: sog, COG: 90, Status: "under way using engine", TS: ts,
	}
}

// vesselDoc mirrors the legacy API document for decode-side checks.
type vesselDoc struct {
	MMSI   string  `json:"mmsi"`
	Name   string  `json:"name"`
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
	SOG    float64 `json:"sog"`
	COG    float64 `json:"cog"`
	Status string  `json:"status"`
	TS     string  `json:"ts"`
	Fc     []struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
		T   int64   `json:"t"`
	} `json:"forecast"`
}

func decodeVessels(t *testing.T, snap *VesselSnapshot, limit int, box *geo.BBox) []vesselDoc {
	t.Helper()
	var buf bytes.Buffer
	if _, err := snap.WriteJSON(&buf, limit, box); err != nil {
		t.Fatal(err)
	}
	var docs []vesselDoc
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("snapshot body is not valid JSON: %v\n%s", err, buf.String())
	}
	return docs
}

func TestWorldViewRoundTrip(t *testing.T) {
	v := manual(t, Config{})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	v.ApplyState(VesselState{
		MMSI: 237000001, Name: `T"quoted"`, Lat: 37.5, Lon: 24.5,
		SOG: 12.3, COG: 91.5, Status: "under way using engine", TS: ts,
		Forecast: []events.ForecastPoint{
			{Pos: geo.Point{Lat: 37.6, Lon: 24.6}, At: ts.Add(5 * time.Minute)},
		},
	})
	v.ApplyState(state(237000002, 38.0, 25.0, 0.1, ts.Add(time.Second)))
	e := v.Refresh()
	snap := v.Vessels()
	if snap.Epoch != e {
		t.Fatalf("snapshot epoch %d, refresh returned %d", snap.Epoch, e)
	}
	docs := decodeVessels(t, snap, 0, nil)
	if len(docs) != 2 {
		t.Fatalf("vessels = %d, want 2", len(docs))
	}
	// Newest first.
	if docs[0].MMSI != "237000002" || docs[1].MMSI != "237000001" {
		t.Fatalf("ordering: %s then %s", docs[0].MMSI, docs[1].MMSI)
	}
	d := docs[1]
	if d.Name != `T"quoted"` {
		t.Fatalf("name escaping lost: %q", d.Name)
	}
	if d.Lat != 37.5 || d.SOG != 12.3 || d.Status != "under way using engine" {
		t.Fatalf("doc fields: %+v", d)
	}
	if d.TS != ts.Format(time.RFC3339) {
		t.Fatalf("ts = %q", d.TS)
	}
	if len(d.Fc) != 1 || d.Fc[0].T != ts.Add(5*time.Minute).Unix() {
		t.Fatalf("forecast: %+v", d.Fc)
	}
}

func TestWorldViewLimitAndBBox(t *testing.T) {
	v := manual(t, Config{DefaultLimit: 4})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		// Half the fleet in the Aegean, half far away.
		lat, lon := 37.5, 24.5
		if i%2 == 1 {
			lat, lon = 52.0, 4.0
		}
		v.ApplyState(state(ais.MMSI(237000001+i), lat, lon, 10, ts.Add(time.Duration(i)*time.Second)))
	}
	v.Refresh()
	snap := v.Vessels()

	if got := decodeVessels(t, snap, 3, nil); len(got) != 3 {
		t.Fatalf("limit 3 returned %d", len(got))
	}
	// The default-limit fast path must agree with the general path.
	var fast bytes.Buffer
	if _, err := snap.WriteJSON(&fast, 4, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.Bytes(), snap.body) {
		t.Fatal("default-limit request did not take the pre-built body")
	}
	box := geo.AegeanSea
	docs := decodeVessels(t, snap, 0, &box)
	if len(docs) != 5 {
		t.Fatalf("bbox returned %d vessels, want 5", len(docs))
	}
	for _, d := range docs {
		if !box.Contains(geo.Point{Lat: d.Lat, Lon: d.Lon}) {
			t.Fatalf("vessel outside box: %+v", d)
		}
	}
	if got := decodeVessels(t, snap, 2, &box); len(got) != 2 {
		t.Fatalf("bbox+limit returned %d", len(got))
	}
}

func TestApplyStateOutOfOrderDropped(t *testing.T) {
	v := manual(t, Config{})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	v.ApplyState(state(237000001, 37.5, 24.5, 10, ts.Add(time.Minute)))
	v.ApplyState(state(237000001, 99, 99, 10, ts)) // stale delta
	v.Refresh()
	docs := decodeVessels(t, v.Vessels(), 0, nil)
	if len(docs) != 1 || docs[0].Lat != 37.5 {
		t.Fatalf("stale delta won: %+v", docs)
	}
}

func TestExpireAfterDropsSilentVessels(t *testing.T) {
	v := manual(t, Config{ExpireAfter: time.Hour})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	v.ApplyState(state(237000001, 37.5, 24.5, 10, ts))
	v.ApplyState(state(237000002, 37.6, 24.6, 10, ts.Add(2*time.Hour)))
	v.Refresh()
	docs := decodeVessels(t, v.Vessels(), 0, nil)
	if len(docs) != 1 || docs[0].MMSI != "237000002" {
		t.Fatalf("expiry: %+v", docs)
	}
	// The expired vessel resurrects only with a fresh report.
	v.ApplyState(state(237000001, 37.5, 24.5, 10, ts.Add(3*time.Hour)))
	v.Refresh()
	if docs := decodeVessels(t, v.Vessels(), 0, nil); len(docs) != 2 {
		t.Fatalf("after fresh report: %+v", docs)
	}
}

func TestRegionView(t *testing.T) {
	v := manual(t, Config{RegionResolution: 7})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	// Three vessels in one cell (two underway), one far away.
	v.ApplyState(state(237000001, 37.5, 24.5, 10, ts))
	v.ApplyState(state(237000002, 37.5001, 24.5001, 14, ts))
	v.ApplyState(state(237000003, 37.5002, 24.5002, 0.1, ts))
	v.ApplyState(state(237000004, 52.0, 4.0, 8, ts))
	v.Refresh()
	snap := v.Regions()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var cells []struct {
		Cell     string  `json:"cell"`
		Count    int     `json:"count"`
		Underway int     `json:"underway"`
		MeanSOG  float64 `json:"mean_sog"`
		MaxSOG   float64 `json:"max_sog"`
	}
	if err := json.Unmarshal(buf.Bytes(), &cells); err != nil {
		t.Fatalf("region body: %v\n%s", err, buf.String())
	}
	if len(cells) != 2 || snap.Cells != 2 {
		t.Fatalf("cells = %d (%d), want 2", len(cells), snap.Cells)
	}
	// Busiest first.
	if cells[0].Count != 3 || cells[0].Underway != 2 || cells[0].MaxSOG != 14 {
		t.Fatalf("busiest cell: %+v", cells[0])
	}
}

func TestEventView(t *testing.T) {
	v := manual(t, Config{EventWindow: 4})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		v.ApplyEvent(events.Event{
			Kind: events.KindProximity,
			A:    ais.MMSI(237000001 + i), B: 237000099,
			At:  ts.Add(time.Duration(i) * time.Minute),
			Pos: geo.Point{Lat: 37.5, Lon: 24.5}, Meters: 300,
		})
	}
	v.Refresh()
	snap := v.Events()
	var buf bytes.Buffer
	n, err := snap.WriteJSON(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var docs []struct {
		Kind   string  `json:"kind"`
		A      string  `json:"a"`
		B      string  `json:"b"`
		At     string  `json:"at"`
		Meters float64 `json:"meters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("events body: %v\n%s", err, buf.String())
	}
	// Window of 4 keeps the newest 4, oldest first.
	if n != 4 || len(docs) != 4 || docs[0].A != "237000003" || docs[3].A != "237000006" {
		t.Fatalf("window: n=%d docs=%+v", n, docs)
	}
	if docs[0].Meters != 300 || docs[0].B != "237000099" || docs[0].Kind != "proximity" {
		t.Fatalf("doc: %+v", docs[0])
	}
	// Limited read returns the newest `limit`, oldest of those first.
	buf.Reset()
	if n, _ := snap.WriteJSON(&buf, 2); n != 2 {
		t.Fatalf("limit 2 wrote %d", n)
	}
	docs = docs[:0]
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].A != "237000005" || docs[1].A != "237000006" {
		t.Fatalf("limited: %+v", docs)
	}
}

func TestCongestionView(t *testing.T) {
	v := manual(t, Config{})
	v.SetCongestionSource(func() []congestion.Status {
		return []congestion.Status{{
			Port:    congestion.Port{Name: "Piraeus", Pos: geo.Point{Lat: 37.94, Lon: 23.63}, Capacity: 10},
			Present: 8, Arriving: 5, PeakPredicted: 13,
		}}
	})
	v.Refresh()
	var buf bytes.Buffer
	if err := v.Congestion().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var docs []struct {
		Port      string `json:"port"`
		Capacity  int    `json:"capacity"`
		Present   int    `json:"present"`
		Arriving  int    `json:"arriving"`
		Peak      int    `json:"peak_predicted"`
		Congested bool   `json:"congested"`
	}
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("congestion body: %v\n%s", err, buf.String())
	}
	if len(docs) != 1 || docs[0].Port != "Piraeus" || !docs[0].Congested || docs[0].Peak != 13 {
		t.Fatalf("congestion docs: %+v", docs)
	}
}

func TestStatsCounters(t *testing.T) {
	v := manual(t, Config{})
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	v.ApplyState(state(237000001, 37.5, 24.5, 10, ts))
	v.ApplyEvent(events.Event{Kind: events.KindProximity, A: 237000001, B: 237000002, At: ts})
	v.Refresh()
	v.Refresh()
	s := v.Stats()
	if s.Epoch != 2 || s.Refreshes != 2 {
		t.Fatalf("epoch/refreshes: %+v", s)
	}
	if s.StatesApplied != 1 || s.EventsApplied != 1 {
		t.Fatalf("applies: %+v", s)
	}
	if s.Vessels != 1 || s.EventsWindow != 1 {
		t.Fatalf("populations: %+v", s)
	}
	if s.SnapshotBytes <= 0 {
		t.Fatalf("snapshot bytes: %d", s.SnapshotBytes)
	}
	if s.EpochAge < 0 || s.EpochAge > time.Minute {
		t.Fatalf("epoch age: %v", s.EpochAge)
	}
}

func TestBackgroundRefresher(t *testing.T) {
	v := New(Config{RefreshInterval: 2 * time.Millisecond})
	defer v.Close()
	v.ApplyState(state(237000001, 37.5, 24.5, 10, time.Now()))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v.Vessels().Len() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background refresher never materialized the applied state")
}

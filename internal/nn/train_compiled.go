package nn

import (
	"runtime"
	"sync"
)

// This file implements the compiled training fast path. The reference
// trainer (lstm.go / network.go) walks four separate per-gate matrices
// in both directions of both passes; profiling shows >90% of a training
// step is the two GEMV-shaped loop nests — forward pre-activations and
// the backward hidden-state gradient — plus the rank-1 weight-gradient
// updates. All three are exactly the memory shapes the PR 3 fused
// inference layout was built for, so TrainCompiled packs the gate
// matrices into the same 4H x (In+Hidden) row-major blocks, runs the
// forward GEMV through the identical stepVec/stepScalar kernels, and
// adds two training-only kernels (kernel_train_amd64.s): dotRows4AVX2
// for the transposed backward GEMV and rank1HiddenAVX2 for the rank-1
// weight-gradient updates.
//
// Numerics: the compiled forward uses act4/tanhFast (~2 ulp) like
// compiled inference; everything downstream of the activations is the
// same arithmetic as the reference BPTT in the same order, so per-
// element gradients agree with the reference to ~1e-12 on trained-scale
// weights — the gradient-check tests enforce <=1e-8. The optimiser is
// not reimplemented at all: worker gradients are scattered back into
// the master's per-gate matrix accumulators and the shared applyStep
// (clip + Adam + L1) runs unchanged, so compiled and reference training
// differ only in forward/backward arithmetic, never in step semantics.
//
// Concurrency: one trainWorker per goroutine holds every mutable buffer
// (activation arenas, fused gradient blocks, BPTT state). The fused
// weight blocks and the master's weights are shared read-only during
// the gradient phase; pack() refreshes them once per batch after the
// master steps. Workers take strided sample assignments (worker w gets
// samples w, w+workers, ...) and merge in worker order, so a fixed
// worker count is exactly reproducible.

// fusedTrain is one LSTM direction's training-time fused snapshot: the
// inference fusedCell layout plus the transposed hidden block the
// backward GEMV streams, and the source cell to re-pack from after each
// optimiser step.
type fusedTrain struct {
	fusedCell
	src *lstmCell
	// wT is the hidden columns of w transposed: wT[k*4H + r] =
	// w[r*width + in + k], so the backward hidden-state gradient
	// dhPrev[k] = sum_r zg[r]*w[r*width+in+k] becomes a dense
	// row-major GEMV over contiguous rows of length 4H. Only built on
	// the vector path; the scalar fallback reads w directly.
	wT []float64
}

func newFusedTrain(c *lstmCell) *fusedTrain {
	ft := &fusedTrain{fusedCell: *fuse(c), src: c}
	if ft.vec {
		ft.wT = make([]float64, ft.hidden*4*ft.hidden)
	}
	ft.pack()
	return ft
}

// pack refreshes the fused weight/bias blocks (and the transpose) from
// the source cell. Called once per batch: the master's weights only
// move in applyStep, and the copy is linear in the parameter count —
// noise next to the O(T * H^2) batch compute.
func (ft *fusedTrain) pack() {
	c := ft.src
	width := ft.width
	for u := 0; u < c.Hidden; u++ {
		base := u * 4 * width
		copy(ft.w[base:base+width], c.Wi.W[u*width:(u+1)*width])
		copy(ft.w[base+width:base+2*width], c.Wf.W[u*width:(u+1)*width])
		copy(ft.w[base+2*width:base+3*width], c.Wg.W[u*width:(u+1)*width])
		copy(ft.w[base+3*width:base+4*width], c.Wo.W[u*width:(u+1)*width])
		ft.b[4*u] = c.Bi.W[u]
		ft.b[4*u+1] = c.Bf.W[u]
		ft.b[4*u+2] = c.Bg.W[u]
		ft.b[4*u+3] = c.Bo.W[u]
	}
	if ft.vec {
		in, hidden := ft.in, ft.hidden
		for k := 0; k < hidden; k++ {
			row := ft.wT[k*4*hidden : (k+1)*4*hidden]
			for r := range row {
				row[r] = ft.w[r*width+in+k]
			}
		}
	}
}

// trainArena is one direction's per-worker activation cache: unlike the
// inference path, BPTT must keep every step. Layout is chosen for the
// backward pass: gates holds the four activated gates of unit u at
// slots 4u..4u+3 (matching the fused z layout), and tanh(c_t) is cached
// at forward time so backward never re-evaluates a transcendental.
type trainArena struct {
	// hsBuf backs hs contiguously ((n+1) x hidden, row-major): the
	// deferred weight-gradient GEMM streams all hidden states of a
	// sample in one kernel call, so they must be one dense block.
	hsBuf []float64
	// zgBuf backs zgs contiguously (n x 4*hidden): the per-step
	// pre-activation gradients, kept until the deferred GEMM at the end
	// of the backward pass (vector path only).
	zgBuf []float64
	hs    [][]float64 // n+1 rows; row 0 is the zero initial state, never written
	cs    [][]float64 // n+1 rows; row 0 zero likewise
	zgs   [][]float64 // n rows of 4*hidden (views into zgBuf)
	gates [][]float64 // n rows of 4*hidden: activated (i, f, g, o) per unit
	tanhC [][]float64 // n rows of hidden
	xs    [][]float64 // n input pointers (reverse indexing resolved once)
}

func (ar *trainArena) ensure(n, hidden int, vec bool) {
	if len(ar.hs) < n+1 {
		ar.hsBuf = make([]float64, (n+1)*hidden)
		ar.hs = ar.hs[:0]
		for t := 0; t <= n; t++ {
			ar.hs = append(ar.hs, ar.hsBuf[t*hidden:(t+1)*hidden])
		}
	}
	for len(ar.cs) < n+1 {
		ar.cs = append(ar.cs, make([]float64, hidden))
	}
	for len(ar.gates) < n {
		ar.gates = append(ar.gates, make([]float64, 4*hidden))
		ar.tanhC = append(ar.tanhC, make([]float64, hidden))
		ar.xs = append(ar.xs, nil)
	}
	if vec && len(ar.zgs) < n {
		ar.zgBuf = make([]float64, n*4*hidden)
		ar.zgs = ar.zgs[:0]
		for t := 0; t < n; t++ {
			ar.zgs = append(ar.zgs, ar.zgBuf[t*4*hidden:(t+1)*4*hidden])
		}
	}
}

// forwardTrain runs the fused forward pass over seq (reversed when
// reverse is set), caching activations into the arena. z is the
// caller's 4*hidden pre-activation buffer.
func (ft *fusedTrain) forwardTrain(seq [][]float64, reverse bool, ar *trainArena, z []float64) {
	in, hidden := ft.in, ft.hidden
	n := len(seq)
	ar.ensure(n, hidden, ft.vec)
	z = z[:4*hidden]
	for t := 0; t < n; t++ {
		x := seq[t]
		if reverse {
			x = seq[n-1-t]
		}
		x = x[:in]
		ar.xs[t] = x
		h := ar.hs[t]
		if ft.vec {
			ft.stepVec(x, h, z)
		} else {
			ft.stepScalar(x, h, z)
		}
		g := ar.gates[t]
		cPrev := ar.cs[t]
		cN := ar.cs[t+1]
		hN := ar.hs[t+1]
		tC := ar.tanhC[t]
		for u := 0; u < hidden; u++ {
			ig, fg, gg, og := act4(z[4*u], z[4*u+1], z[4*u+2], z[4*u+3])
			cN[u] = fg*cPrev[u] + ig*gg
			g[4*u] = ig
			g[4*u+1] = fg
			g[4*u+2] = gg
			g[4*u+3] = og
		}
		// Separate pass so tanh reads finished cN values instead of
		// serialising behind each unit's i/f/g chain (same split as the
		// inference run loop).
		for u := 0; u < hidden; u++ {
			tC[u] = tanhFast(cN[u])
			hN[u] = g[4*u+3] * tC[u]
		}
	}
}

// backwardTrain propagates dLast through the cached steps, accumulating
// fused weight gradients into gw (4H x width, same layout as ft.w) and
// fused bias gradients into gb (4H). The per-unit chain-rule algebra is
// the reference backward's, verbatim; only the two heavy loop nests —
// the rank-1 weight update and the hidden-state gradient GEMV — go
// through the vector kernels.
func (ft *fusedTrain) backwardTrain(n int, ar *trainArena, dLast []float64, gw, gb []float64, w *trainWorker) {
	in, hidden := ft.in, ft.hidden
	width := ft.width
	dh := w.dh[:hidden]
	dc := w.dc[:hidden]
	copy(dh, dLast)
	for i := range dc {
		dc[i] = 0
	}
	sp1 := w.sp1[:hidden]
	sp2 := w.sp2[:hidden]
	for t := n - 1; t >= 0; t-- {
		g := ar.gates[t]
		tC := ar.tanhC[t]
		cPrev := ar.cs[t]
		// On the vector path each step's pre-activation gradients are
		// kept in the arena: the weight-gradient GEMM below the time
		// loop consumes all of them at once.
		zg := w.zg[:4*hidden]
		if ft.vec {
			zg = ar.zgs[t]
		}
		dhPrev := sp1
		dcPrev := sp2
		for i := range dhPrev {
			dhPrev[i] = 0 // accumulated below; dcPrev is direct-store
		}
		for u := 0; u < hidden; u++ {
			ig := g[4*u]
			fg := g[4*u+1]
			gg := g[4*u+2]
			og := g[4*u+3]
			tcU := tC[u]
			do := dh[u] * tcU
			dcU := dc[u] + dh[u]*og*(1-tcU*tcU)
			di := dcU * gg
			dg := dcU * ig
			df := dcU * cPrev[u]
			dcPrev[u] = dcU * fg

			// Pre-activation gradients, stored in the fused gate order.
			zi := di * ig * (1 - ig)
			zf := df * fg * (1 - fg)
			zgg := dg * (1 - gg*gg)
			zo := do * og * (1 - og)
			zg[4*u] = zi
			zg[4*u+1] = zf
			zg[4*u+2] = zgg
			zg[4*u+3] = zo
			gb[4*u] += zi
			gb[4*u+1] += zf
			gb[4*u+2] += zgg
			gb[4*u+3] += zo
		}
		if ft.vec {
			// dhPrev += wT · zg: hidden rows of length 4H, contiguous.
			dotRows4AVX2(&ft.wT[0], &zg[0], &dhPrev[0], hidden/4, 4*hidden, 4*hidden)
		} else {
			hPrev := ar.hs[t]
			x := ar.xs[t]
			for r := 0; r < 4*hidden; r++ {
				a := zg[r]
				row := gw[r*width : r*width+width]
				for k := 0; k < in; k++ {
					row[k] += a * x[k]
				}
				rh := row[in : in+hidden]
				for k := 0; k < hidden; k++ {
					rh[k] += a * hPrev[k]
				}
			}
			for k := 0; k < hidden; k++ {
				s := 0.0
				col := in + k
				for r := 0; r < 4*hidden; r++ {
					s += zg[r] * ft.w[r*width+col]
				}
				dhPrev[k] += s
			}
		}
		sp1, dh = dh, dhPrev
		sp2, dc = dc, dcPrev
	}
	if ft.vec {
		// Deferred rank-1 weight updates, accumulated across all steps
		// in one pass: gw += sum_t zg_t ⊗ [x_t ; h_{t-1}]. The input
		// segment stays scalar (In is 3 in the S-VRF shape); the hidden
		// segment is a register-tiled GEMM that loads and stores each
		// gradient element once per sample instead of once per step.
		// (Summing t ascending instead of the reference's descending
		// order reorders additions by ~1 ulp — far inside the 1e-8
		// gradient-parity contract.)
		for t := 0; t < n; t++ {
			zg := ar.zgs[t]
			x := ar.xs[t]
			for r := 0; r < 4*hidden; r++ {
				a := zg[r]
				row := gw[r*width : r*width+in]
				for k := 0; k < in; k++ {
					row[k] += a * x[k]
				}
			}
		}
		deferredRank1AVX2(&gw[in], &ar.hsBuf[0], &ar.zgBuf[0], 4*hidden, hidden, n, width, hidden, 4*hidden)
	}
}

// trainWorker owns every mutable buffer of one gradient goroutine:
// activation arenas per direction, fused gradient accumulators, BPTT
// state, and the head's scratch. Workers persist across batches on the
// TrainCompiled plan; ensureWorkers re-zeroes them per batch.
type trainWorker struct {
	arF, arB trainArena
	gwF, gbF []float64 // fused forward-cell grads: 4H x width, 4H
	gwB, gbB []float64 // backward cell (nil when unidirectional)
	outG     []float64 // head weight grads: OutputDim x encDim
	obG      []float64 // head bias grads: OutputDim
	z        []float64 // 4H pre-activations (forward)
	zg       []float64 // 4H pre-activation gradients (backward)
	dh, dc   []float64
	sp1, sp2 []float64
	enc      []float64
	dEnc     []float64
	y, dy    []float64
	loss     float64
}

func newTrainWorker(m *SeqRegressor) *trainWorker {
	h := m.cfg.Hidden
	width := m.cfg.InputDim + h
	encDim := m.encDim()
	w := &trainWorker{
		gwF:  make([]float64, 4*h*width),
		gbF:  make([]float64, 4*h),
		outG: make([]float64, m.cfg.OutputDim*encDim),
		obG:  make([]float64, m.cfg.OutputDim),
		z:    make([]float64, 4*h),
		zg:   make([]float64, 4*h),
		dh:   make([]float64, h),
		dc:   make([]float64, h),
		sp1:  make([]float64, h),
		sp2:  make([]float64, h),
		enc:  make([]float64, encDim),
		dEnc: make([]float64, encDim),
		y:    make([]float64, m.cfg.OutputDim),
		dy:   make([]float64, m.cfg.OutputDim),
	}
	if m.bw != nil {
		w.gwB = make([]float64, 4*h*width)
		w.gbB = make([]float64, 4*h)
	}
	return w
}

func (w *trainWorker) zero() {
	zeroF64(w.gwF)
	zeroF64(w.gbF)
	zeroF64(w.gwB)
	zeroF64(w.gbB)
	zeroF64(w.outG)
	zeroF64(w.obG)
	w.loss = 0
}

func zeroF64(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// TrainCompiled is a training plan bound to one SeqRegressor. It owns
// the fused weight snapshots and the persistent worker pool; the master
// model keeps the parameters, optimiser state and step counter, so the
// compiled and reference paths can be interleaved freely on the same
// model. Not safe for concurrent TrainBatch calls (neither is the
// model it wraps).
type TrainCompiled struct {
	m       *SeqRegressor
	fw      *fusedTrain
	bw      *fusedTrain // nil when unidirectional
	workers []*trainWorker
}

// CompileTrain builds a compiled training plan for the model. The plan
// re-snapshots weights at every batch, so it stays valid across
// arbitrarily many optimisation steps (including reference steps taken
// in between).
func (m *SeqRegressor) CompileTrain() *TrainCompiled {
	tc := &TrainCompiled{m: m, fw: newFusedTrain(m.fw)}
	if m.bw != nil {
		tc.bw = newFusedTrain(m.bw)
	}
	return tc
}

func (tc *TrainCompiled) ensureWorkers(n int) {
	for len(tc.workers) < n {
		tc.workers = append(tc.workers, newTrainWorker(tc.m))
	}
	for w := 0; w < n; w++ {
		tc.workers[w].zero()
	}
}

// gradSample computes one sample's loss and accumulates gradients into
// the worker's fused buffers. Allocation-free once the worker's arenas
// have grown to the longest sequence.
func (tc *TrainCompiled) gradSample(w *trainWorker, s Sample) float64 {
	m := tc.m
	n := len(s.Seq)
	if n == 0 {
		return 0
	}
	hiddenDim := m.cfg.Hidden
	encDim := m.encDim()

	tc.fw.forwardTrain(s.Seq, false, &w.arF, w.z)
	enc := w.enc[:encDim]
	copy(enc[:hiddenDim], w.arF.hs[n])
	if tc.bw != nil {
		tc.bw.forwardTrain(s.Seq, true, &w.arB, w.z)
		copy(enc[hiddenDim:], w.arB.hs[n])
	}

	y := w.y
	for o := 0; o < m.cfg.OutputDim; o++ {
		z := m.ob.W[o]
		row := m.out.W[o*encDim : (o+1)*encDim]
		for k, e := range enc {
			z = madd(row[k], e, z)
		}
		y[o] = z
	}
	loss := 0.0
	dy := w.dy
	for o := range y {
		diff := y[o] - s.Target[o]
		loss += diff * diff
		dy[o] = 2 * diff / float64(m.cfg.OutputDim)
	}
	loss /= float64(m.cfg.OutputDim)

	dEnc := w.dEnc[:encDim]
	zeroF64(dEnc)
	for o := 0; o < m.cfg.OutputDim; o++ {
		w.obG[o] += dy[o]
		row := o * encDim
		wRow := m.out.W[row : row+encDim]
		gRow := w.outG[row : row+encDim]
		d := dy[o]
		for k, e := range enc {
			gRow[k] += d * e
			dEnc[k] += d * wRow[k]
		}
	}
	tc.fw.backwardTrain(n, &w.arF, dEnc[:hiddenDim], w.gwF, w.gbF, w)
	if tc.bw != nil {
		tc.bw.backwardTrain(n, &w.arB, dEnc[hiddenDim:], w.gwB, w.gbB, w)
	}
	return loss
}

// scatter adds a worker's fused gradients into the master's per-gate
// matrix accumulators, translating fused rows 4u..4u+3 back to the
// (Wi, Wf, Wg, Wo) blocks. Runs on the caller's goroutine in worker
// order, so the merge is deterministic for a fixed worker count.
func (tc *TrainCompiled) scatter(w *trainWorker) {
	m := tc.m
	scatterCell(m.fw, w.gwF, w.gbF)
	if m.bw != nil {
		scatterCell(m.bw, w.gwB, w.gbB)
	}
	for i, g := range w.outG {
		m.out.g[i] += g
	}
	for i, g := range w.obG {
		m.ob.g[i] += g
	}
}

func scatterCell(c *lstmCell, gw, gb []float64) {
	width := c.In + c.Hidden
	for u := 0; u < c.Hidden; u++ {
		base := u * 4 * width
		row := u * width
		addF64(c.Wi.g[row:row+width], gw[base:base+width])
		addF64(c.Wf.g[row:row+width], gw[base+width:base+2*width])
		addF64(c.Wg.g[row:row+width], gw[base+2*width:base+3*width])
		addF64(c.Wo.g[row:row+width], gw[base+3*width:base+4*width])
		c.Bi.g[u] += gb[4*u]
		c.Bf.g[u] += gb[4*u+1]
		c.Bg.g[u] += gb[4*u+2]
		c.Bo.g[u] += gb[4*u+3]
	}
}

func addF64(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// TrainBatch runs one optimisation step through the compiled path and
// returns the mean sample loss. The optimiser tail (clip, Adam, L1,
// step counter) is the master model's applyStep — identical to the
// reference TrainBatch's.
func (tc *TrainCompiled) TrainBatch(batch []Sample, lr float64, workers int) float64 {
	m := tc.m
	if len(batch) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	tc.fw.pack()
	if tc.bw != nil {
		tc.bw.pack()
	}
	tc.ensureWorkers(workers)

	if workers == 1 {
		w := tc.workers[0]
		for _, s := range batch {
			w.loss += tc.gradSample(w, s)
		}
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := tc.workers[wi]
				for i := wi; i < len(batch); i += workers {
					w.loss += tc.gradSample(w, batch[i])
				}
			}(wi)
		}
		wg.Wait()
	}

	m.zeroGrad()
	total := 0.0
	for wi := 0; wi < workers; wi++ {
		total += tc.workers[wi].loss
		tc.scatter(tc.workers[wi])
	}
	m.applyStep(lr, len(batch))
	return total / float64(len(batch))
}

// Fit trains through the compiled path with the shared epoch/shuffle
// loop, so a fixed seed visits batches in the same order as the
// reference Fit.
func (tc *TrainCompiled) Fit(data []Sample, opt FitOptions) float64 {
	return tc.m.fit(data, opt, tc)
}

package pipeline

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// feedClosePair ingests two vessels sailing ~200 m apart so both the
// proximity and collision detectors see real candidate pairs.
func feedClosePair(p *Pipeline, from time.Time) {
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	feedTrack(p, 930000001, base, 90, 10, 4, 30*time.Second, from)
	feedTrack(p, 930000002, geo.Destination(base, 90, 200), 90, 10, 4, 30*time.Second, from.Add(2*time.Second))
}

func TestDetectionMetricsExposed(t *testing.T) {
	p := newTestPipeline(t)
	feedClosePair(p, t0)
	p.Drain(5 * time.Second)

	s := p.Stats()
	if s.ProximityDetection.UpdateLatency.Count == 0 {
		t.Fatal("no proximity detector updates recorded")
	}
	if s.CollisionDetection.UpdateLatency.Count == 0 {
		t.Fatal("no collision detector updates recorded")
	}
	if s.ProximityDetection.Tracked <= 0 || s.CollisionDetection.Tracked <= 0 {
		t.Fatalf("occupancy gauges not maintained: prox=%d coll=%d",
			s.ProximityDetection.Tracked, s.CollisionDetection.Tracked)
	}
	// Two vessels within threshold: the grid paths must have probed and
	// checked candidate pairs.
	if s.ProximityDetection.Candidates == 0 || s.ProximityDetection.Checked == 0 {
		t.Fatalf("proximity candidate funnel empty: %+v", s.ProximityDetection)
	}
	if s.CollisionDetection.Candidates == 0 {
		t.Fatalf("collision candidate funnel empty: %+v", s.CollisionDetection)
	}
	if len(p.EventLog().ByKind(events.KindProximity)) == 0 {
		t.Fatal("close pair produced no proximity event")
	}

	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"seatwin_events_proximity_update_seconds_count",
		"seatwin_events_collision_update_seconds_count",
		"seatwin_events_proximity_candidates_total",
		"seatwin_events_collision_pairs_checked_total",
		"seatwin_events_proximity_evictions_total",
		"seatwin_events_collision_tracked",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %s", series)
		}
	}

	rec = httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
	var doc struct {
		EventsDetection map[string]map[string]any `json:"events_detection"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"proximity", "collision"} {
		d := doc.EventsDetection[fam]
		if d == nil {
			t.Fatalf("/api/stats missing events_detection.%s", fam)
		}
		if n, _ := d["updates"].(float64); n == 0 {
			t.Fatalf("events_detection.%s reports zero updates: %v", fam, d)
		}
	}
}

// The occupancy gauge must return to zero when idle cells passivate:
// the Stopping decrement runs before the passivator sees the message.
func TestDetectionTrackedGaugeDropsOnPassivation(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.CellIdleTimeout = 150 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	feedClosePair(p, t0)
	p.Drain(5 * time.Second)
	if s := p.Stats(); s.ProximityDetection.Tracked <= 0 || s.CollisionDetection.Tracked <= 0 {
		t.Fatalf("gauges empty before passivation: %+v / %+v",
			s.ProximityDetection, s.CollisionDetection)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := p.Stats()
		if s.ProximityDetection.Tracked == 0 && s.CollisionDetection.Tracked == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tracked gauges did not drop on passivation: prox=%d coll=%d",
				s.ProximityDetection.Tracked, s.CollisionDetection.Tracked)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The scan oracles stay selectable and fully wired: identical events,
// update timing and occupancy still recorded (the candidate funnel is
// grid-only by design).
func TestScanDetectorOptOut(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.UseScanDetectors = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	feedClosePair(p, t0)
	p.Drain(5 * time.Second)
	if len(p.EventLog().ByKind(events.KindProximity)) == 0 {
		t.Fatal("scan path produced no proximity event")
	}
	s := p.Stats()
	if s.ProximityDetection.UpdateLatency.Count == 0 || s.CollisionDetection.UpdateLatency.Count == 0 {
		t.Fatal("scan path updates not timed")
	}
	if s.ProximityDetection.Tracked <= 0 || s.CollisionDetection.Tracked <= 0 {
		t.Fatalf("scan path occupancy gauges not maintained: prox=%d coll=%d",
			s.ProximityDetection.Tracked, s.CollisionDetection.Tracked)
	}
	if s.ProximityDetection.Candidates != 0 || s.CollisionDetection.Candidates != 0 {
		t.Fatalf("scan oracle unexpectedly reported grid funnel stats: %+v / %+v",
			s.ProximityDetection, s.CollisionDetection)
	}
}

package actor

import "time"

// Context carries one message delivery: the message itself, its sender,
// the receiving actor's identity and the operations an actor may perform
// while processing (send, spawn children, stop, respond).
//
// A Context is only valid for the duration of the Receive call it was
// passed to.
type Context struct {
	system  *System
	process *process
	self    *PID
	sender  *PID
	message any
}

// Message returns the message being processed.
func (c *Context) Message() any { return c.message }

// Self returns the PID of the processing actor.
func (c *Context) Self() *PID { return c.self }

// Sender returns the PID the message was sent with, or nil for
// fire-and-forget sends and lifecycle messages.
func (c *Context) Sender() *PID { return c.sender }

// System returns the owning actor system.
func (c *Context) System() *System { return c.system }

// Send delivers a fire-and-forget message to target, with this actor
// recorded as the sender.
func (c *Context) Send(target *PID, msg any) {
	c.system.sendWithSender(target, msg, c.self)
}

// Forward re-sends the current message to target preserving the
// original sender, so replies skip the intermediary.
func (c *Context) Forward(target *PID) {
	c.system.sendWithSender(target, c.message, c.sender)
}

// Respond replies to the sender of the current message. Messages sent
// without a sender (including lifecycle messages) make Respond a no-op
// routed to dead letters.
func (c *Context) Respond(msg any) {
	if c.sender == nil {
		c.system.deadLetter(nil, msg, c.self)
		return
	}
	c.system.sendWithSender(c.sender, msg, c.self)
}

// Spawn creates a child of this actor. Children are stopped
// automatically when this actor stops.
func (c *Context) Spawn(props *Props) *PID {
	pid := c.system.spawn(props, "", c.self)
	c.process.addChild(pid)
	return pid
}

// SpawnNamed creates a named child of this actor; see System.SpawnNamed.
func (c *Context) SpawnNamed(props *Props, name string) (*PID, error) {
	pid, err := c.system.spawnNamed(props, name, c.self)
	if err != nil {
		return nil, err
	}
	c.process.addChild(pid)
	return pid, nil
}

// Stop requests this actor to stop after the current message.
func (c *Context) Stop() {
	c.system.Stop(c.self)
}

// MailboxLen returns the number of user messages waiting in this
// actor's mailbox, which the pipeline uses for backpressure signals.
func (c *Context) MailboxLen() int64 { return c.process.mb.Len() }

// SendAfter schedules msg to be sent to target after the delay. The
// returned timer may be stopped to cancel delivery.
func (c *Context) SendAfter(delay time.Duration, target *PID, msg any) *time.Timer {
	return c.system.SendAfter(delay, target, msg)
}

package pipeline

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/views"
)

// newViewsPipeline builds a pipeline serving from materialized views
// (manual refresh so tests control epochs), with a port configured so
// the congestion rollup is wired.
func newViewsPipeline(t *testing.T) (*Pipeline, *views.Views) {
	t.Helper()
	v := views.New(views.Config{RefreshInterval: -1})
	t.Cleanup(v.Close)
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.Views = v
	cfg.Ports = []congestion.Port{{
		Name: "Piraeus", Pos: geo.Point{Lat: 37.942, Lon: 23.646},
		Radius: 3000, Capacity: 2,
	}}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Shutdown(2 * time.Second) })
	return p, v
}

func TestViewsServingPath(t *testing.T) {
	p, v := newViewsPipeline(t)
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	feedTrack(p, 239000001, base, 90, 12, 5, 30*time.Second, t0)
	// Two close vessels so at least one proximity event exists.
	feedTrack(p, 111000001, base, 0, 8, 3, 30*time.Second, t0)
	feedTrack(p, 111000002, geo.Destination(base, 90, 200), 0, 8, 3, 30*time.Second, t0.Add(5*time.Second))
	p.Drain(5 * time.Second)
	if e := v.Refresh(); e == 0 {
		t.Fatal("refresh did not advance the epoch")
	}

	api := NewAPI(p)
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// /api/vessels serves the pre-encoded snapshot in the legacy shape.
	rec := get("/api/vessels")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/vessels: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var docs []struct {
		MMSI   string  `json:"mmsi"`
		Lat    float64 `json:"lat"`
		Lon    float64 `json:"lon"`
		Status string  `json:"status"`
		TS     string  `json:"ts"`
		FC     []struct {
			Lat float64 `json:"lat"`
			Lon float64 `json:"lon"`
			T   int64   `json:"t"`
		} `json:"forecast"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &docs); err != nil {
		t.Fatalf("vessels body: %v", err)
	}
	if len(docs) != 3 {
		t.Fatalf("%d vessels served, want 3", len(docs))
	}
	seen := map[string]bool{}
	for _, d := range docs {
		seen[d.MMSI] = true
		if d.TS == "" || d.Status == "" {
			t.Fatalf("incomplete doc: %+v", d)
		}
	}
	if !seen["239000001"] || !seen["111000001"] || !seen["111000002"] {
		t.Fatalf("wrong fleet: %v", seen)
	}

	// limit + bbox work on the views path.
	if rec := get("/api/vessels?limit=1"); rec.Code != http.StatusOK {
		t.Fatalf("limit=1: %d", rec.Code)
	} else {
		var one []json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil || len(one) != 1 {
			t.Fatalf("limit=1 returned %d docs (%v)", len(one), err)
		}
	}
	// A box away from the fleet matches nothing.
	if rec := get("/api/vessels?bbox=10,10,11,11"); strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("far bbox body: %q", rec.Body.String())
	}

	// /api/regions serves the per-cell rollup (views-only endpoint).
	rec = get("/api/regions")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/regions: %d", rec.Code)
	}
	var cells []struct {
		Cell  string `json:"cell"`
		Count int    `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cells); err != nil {
		t.Fatalf("regions body: %v", err)
	}
	total := 0
	for _, c := range cells {
		if !strings.HasPrefix(c.Cell, "hex:") {
			t.Fatalf("bad cell id %q", c.Cell)
		}
		total += c.Count
	}
	if len(cells) == 0 || total != 3 {
		t.Fatalf("region rollup covers %d vessels in %d cells, want 3", total, len(cells))
	}

	// /api/events serves the windowed events view.
	rec = get("/api/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/events: %d", rec.Code)
	}
	var evs []struct {
		Kind string `json:"kind"`
		A    string `json:"a"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("events body: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no events served from the view")
	}

	// /api/congestion serves the pre-encoded rollup.
	rec = get("/api/congestion")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/congestion: %d", rec.Code)
	}
	var ports []struct {
		Port     string `json:"port"`
		Capacity int    `json:"capacity"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ports); err != nil {
		t.Fatalf("congestion body: %v", err)
	}
	if len(ports) != 1 || ports[0].Port != "Piraeus" || ports[0].Capacity != 2 {
		t.Fatalf("congestion rollup: %+v", ports)
	}

	// /api/stats carries the views block; /metrics the seatwin_views_*
	// family.
	rec = get("/api/stats")
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	vdoc, ok := stats["views"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing views block: %v", stats)
	}
	if vdoc["epoch"].(float64) < 1 || vdoc["vessels"].(float64) != 3 {
		t.Fatalf("views stats: %v", vdoc)
	}
	body := get("/metrics").Body.String()
	for _, m := range []string{
		"seatwin_views_epoch", "seatwin_views_refreshes_total",
		"seatwin_views_states_applied_total", "seatwin_views_snapshot_bytes",
		"seatwin_views_epoch_age_seconds", "seatwin_views_refresh_p99_seconds",
	} {
		if !strings.Contains(body, m) {
			t.Fatalf("metrics missing %s", m)
		}
	}
}

// TestViewsStalenessAfterNewReports: a report ingested after the last
// refresh is invisible until the next epoch — and visible right after.
func TestViewsStalenessAfterNewReports(t *testing.T) {
	p, v := newViewsPipeline(t)
	feedTrack(p, 239000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 2, 30*time.Second, t0)
	p.Drain(5 * time.Second)
	v.Refresh()
	if n := v.Vessels().Len(); n != 1 {
		t.Fatalf("%d vessels in snapshot, want 1", n)
	}
	feedTrack(p, 239000002, geo.Point{Lat: 38.0, Lon: 25.0}, 90, 12, 2, 30*time.Second, t0)
	p.Drain(5 * time.Second)
	if n := v.Vessels().Len(); n != 1 {
		t.Fatalf("snapshot changed without a refresh: %d vessels", n)
	}
	v.Refresh()
	if n := v.Vessels().Len(); n != 2 {
		t.Fatalf("%d vessels after refresh, want 2", n)
	}
}

// TestRegionsWithoutViews: the rollup endpoint is views-only.
func TestRegionsWithoutViews(t *testing.T) {
	p := newTestPipeline(t)
	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/regions", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/api/regions without views: %d, want 404", rec.Code)
	}
}

// TestLegacyVesselsBoundedScan: without views, /api/vessels walks the
// active index newest-first through the bounded reverse range — the
// response is still correct, and bbox filtering works on this path.
func TestLegacyVesselsBoundedScan(t *testing.T) {
	p := newTestPipeline(t)
	// Five vessels with distinct report times and two distinct areas.
	for i := 0; i < 5; i++ {
		lat := 37.5
		if i >= 3 {
			lat = 40.0 // north pair
		}
		feedTrack(p, ais.MMSI(239000001+i), geo.Point{Lat: lat, Lon: 24.5 + float64(i)*0.2}, 90, 12, 1,
			30*time.Second, t0.Add(time.Duration(i)*time.Minute))
	}
	p.Drain(5 * time.Second)
	api := NewAPI(p)
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/api/vessels?limit=2")
	var docs []struct {
		MMSI string `json:"mmsi"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	// Newest two = the last-ingested vessels.
	if len(docs) != 2 || docs[0].MMSI != "239000005" || docs[1].MMSI != "239000004" {
		t.Fatalf("bounded scan served %+v, want newest two", docs)
	}

	// bbox restricted to the southern trio.
	rec = get("/api/vessels?bbox=37,24,38,26")
	if err := json.Unmarshal(rec.Body.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("bbox matched %d vessels, want 3: %+v", len(docs), docs)
	}
	for _, d := range docs {
		if d.MMSI >= "239000004" {
			t.Fatalf("northern vessel %s leaked into the southern box", d.MMSI)
		}
	}
}

// TestBBoxValidation: malformed boxes are client errors on both
// serving paths.
func TestBBoxValidation(t *testing.T) {
	run := func(t *testing.T, api *API) {
		t.Helper()
		for _, tc := range []struct {
			path string
			want int
		}{
			{"/api/vessels?bbox=1,2,3", http.StatusBadRequest},   // wrong arity
			{"/api/vessels?bbox=a,2,3,4", http.StatusBadRequest}, // non-numeric
			{"/api/vessels?bbox=3,2,1,4", http.StatusBadRequest}, // minLat > maxLat
			{"/api/vessels?bbox=1,4,2,3", http.StatusBadRequest}, // minLon > maxLon
			{"/api/vessels?bbox=1,2,3,4&limit=0", http.StatusBadRequest},
			{"/api/vessels?bbox=1,2,3,4", http.StatusOK},
			{"/api/vessels?bbox=%2010%20,%2010%20,11,11", http.StatusOK}, // spaces tolerated
		} {
			rec := httptest.NewRecorder()
			api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
			if rec.Code != tc.want {
				t.Errorf("GET %s: status %d, want %d", tc.path, rec.Code, tc.want)
			}
		}
	}
	t.Run("views", func(t *testing.T) {
		p, _ := newViewsPipeline(t)
		run(t, NewAPI(p))
	})
	t.Run("kvstore", func(t *testing.T) {
		run(t, NewAPI(newTestPipeline(t)))
	})
}

package pipeline

import (
	"fmt"
	"strconv"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// Messages exchanged between the pipeline's actors.
type (
	// posMsg carries one position report to a vessel actor.
	posMsg struct {
		report     ais.PositionReport
		receivedAt time.Time
	}
	// cellPosMsg shares a vessel position with a proximity cell actor.
	cellPosMsg struct {
		mmsi ais.MMSI
		pos  geo.Point
		at   time.Time
	}
	// forecastMsg shares a vessel's forecast with a collision actor.
	forecastMsg struct {
		forecast events.Forecast
		at       time.Time
	}
	// eventMsg notifies writers (and affected vessel actors) of a
	// detected or forecast event.
	eventMsg struct {
		event events.Event
	}
	// stateMsg carries a vessel's current state to a writer actor.
	stateMsg struct {
		report   ais.PositionReport
		forecast []events.ForecastPoint
	}
	// ckptMsg carries a copy of a vessel's history window to its writer
	// actor for checkpointing (the same batched-write path as states).
	ckptMsg struct {
		mmsi    ais.MMSI
		reports []ais.PositionReport
	}
)

// vesselActor is the per-MMSI digital twin: it keeps the vessel's
// recent history, runs the shared forecasting model and fans results
// out to the spatial actors and the writer.
type vesselActor struct {
	p       *Pipeline
	mmsi    ais.MMSI
	history []ais.PositionReport
	soff    *events.SwitchOffDetector
	static  ais.StaticVoyage
	// lastEvent mirrors the state the cell actors communicate back.
	lastEvent events.Event
	// sinceCkpt counts accepted reports since the last checkpoint was
	// scheduled; dirty marks history not yet covered by one (so the
	// Stopping snapshot is skipped when nothing changed).
	sinceCkpt int
	dirty     bool
}

func newVesselActor(p *Pipeline, mmsi ais.MMSI) *vesselActor {
	return &vesselActor{
		p:    p,
		mmsi: mmsi,
		soff: events.NewSwitchOffDetector(p.cfg.SwitchOff),
	}
}

// Receive implements actor.Actor.
func (v *vesselActor) Receive(c *actor.Context) {
	switch m := c.Message().(type) {
	case actor.Started:
		// Started precedes every user message, both on first spawn and
		// after a supervision restart, so rehydration runs before any
		// report is processed: a restarted pipeline (or a crashed-and-
		// restarted actor) resumes forecasting from its checkpointed
		// window instead of re-warming from MinLiveReports. Replayed
		// broker records are then deduplicated by the out-of-order guard
		// in onPosition against the restored (nanosecond-exact) tail.
		if v.p.ckptInterval() > 0 {
			if reports, ok := v.p.loadCheckpoint(v.mmsi); ok {
				v.history = reports
			}
		}
	case actor.Stopping:
		// Passivation and shutdown snapshot the final window directly
		// (the writer actors may already be stopping), so a clean stop
		// never loses more than nothing.
		if v.dirty && v.p.ckptInterval() > 0 && len(v.history) > 0 {
			v.p.saveCheckpoint(v.mmsi, v.history)
			v.dirty = false
		}
	case posMsg:
		start := time.Now()
		v.onPosition(c, m)
		v.p.observeProcessing(uint64(v.mmsi), time.Since(start))
	case ais.StaticVoyage:
		v.static = m
	case eventMsg:
		// State communicated back from a cell or collision actor (§3).
		v.lastEvent = m.event
	}
}

func (v *vesselActor) onPosition(c *actor.Context, m posMsg) {
	r := m.report
	// Out-of-order reports are dropped: per-key broker ordering makes
	// them rare, but satellite feeds can replay.
	if n := len(v.history); n > 0 && !r.Timestamp.After(v.history[n-1].Timestamp) {
		return
	}
	// Switch-off detection precedes the history append.
	if e, fired := v.soff.Update(r.MMSI, geo.Point{Lat: r.Lat, Lon: r.Lon}, r.Timestamp); fired {
		v.emitEvent(c, e, nil)
	}
	v.history = append(v.history, r)
	if len(v.history) > v.p.cfg.HistoryLimit {
		drop := len(v.history) - v.p.cfg.HistoryLimit
		v.history = append(v.history[:0:0], v.history[drop:]...)
	}
	// Periodic checkpoint: every ckptInterval accepted reports a copy of
	// the window rides the writer path (one batched HSetMulti), so a
	// crash at any point loses at most an interval's worth of warmup.
	if interval := v.p.ckptInterval(); interval > 0 {
		v.dirty = true
		v.sinceCkpt++
		if v.sinceCkpt >= interval {
			v.sinceCkpt = 0
			v.dirty = false
			c.Send(v.p.writerFor(v.mmsi),
				ckptMsg{mmsi: v.mmsi, reports: append([]ais.PositionReport(nil), v.history...)})
		}
	}

	// Forecast with the shared model. The call is timed separately from
	// the whole message so operators can see how much of the processing
	// budget is model inference (seatwin_svrf_infer_seconds).
	var forecast events.Forecast
	haveForecast := false
	inferStart := time.Now()
	if f, ok := v.p.cfg.Forecaster.ForecastTrack(v.history); ok {
		forecast = f
		haveForecast = true
		v.p.forecasts.Inc(uint64(v.mmsi), 1)
		v.p.inferLat.Observe(uint64(v.mmsi), time.Since(inferStart))
	}

	if mon := v.p.congestion; mon != nil {
		mon.ObservePosition(r.MMSI, geo.Point{Lat: r.Lat, Lon: r.Lon}, r.Timestamp)
		if haveForecast {
			mon.ObserveForecast(forecast)
		}
	}

	if !v.p.cfg.DisableEventFanout {
		// Positions go to the proximity cell actor of the report's cell
		// and near neighbours, so borders cannot hide a close pair.
		pos := geo.Point{Lat: r.Lat, Lon: r.Lon}
		for _, cell := range hexgrid.DiskCovering(pos, v.p.cfg.ProximityResolution, v.p.cfg.Proximity.ThresholdMeters) {
			c.Send(v.p.proximityActor(cell), cellPosMsg{mmsi: r.MMSI, pos: pos, at: r.Timestamp})
		}
		// Forecasts go to the collision actors of every cell the
		// predicted track crosses plus each nearest neighbour (§5.2:
		// "the respective cell n and each n+1 nearest cell"). Tracing
		// the segments between forecast points keeps fast vessels from
		// skipping cells that lie between two 5-minute positions.
		if haveForecast {
			seen := make(map[hexgrid.Cell]struct{}, 16)
			for i := 1; i < len(forecast.Points); i++ {
				for _, cell := range hexgrid.TraceLine(
					forecast.Points[i-1].Pos, forecast.Points[i].Pos,
					v.p.cfg.CollisionResolution) {
					if _, dup := seen[cell]; dup {
						continue
					}
					seen[cell] = struct{}{}
					for _, n := range cell.GridDisk(1) {
						if _, dup := seen[n]; !dup {
							seen[n] = struct{}{}
						}
					}
				}
			}
			for cell := range seen {
				c.Send(v.p.collisionActor(cell), forecastMsg{forecast: forecast, at: r.Timestamp})
			}
		}
	}

	// Persist state through the writer actor.
	msg := stateMsg{report: r}
	if haveForecast {
		msg.forecast = forecast.Points
	}
	c.Send(v.p.writerFor(r.MMSI), msg)
}

// emitEvent logs the event, persists it and notifies the involved
// vessel actors.
func (v *vesselActor) emitEvent(c *actor.Context, e events.Event, _ any) {
	v.p.log.Append(e)
	c.Send(v.p.writerFor(e.A), eventMsg{event: e})
}

// cellActor detects live close proximity among the vessels reporting
// inside its hexgrid cell neighbourhood.
type cellActor struct {
	p          *Pipeline
	detector   *events.ProximityDetector
	passivator *passivator
}

// Receive implements actor.Actor.
func (a *cellActor) Receive(c *actor.Context) {
	if a.passivator.touch(c) {
		return
	}
	m, ok := c.Message().(cellPosMsg)
	if !ok {
		return
	}
	for _, e := range a.detector.Update(m.mmsi, m.pos, m.at) {
		a.p.log.Append(e)
		c.Send(a.p.writerFor(e.A), eventMsg{event: e})
		// Communicate the state back to the affected vessel actors.
		c.Send(a.p.vesselActor(e.A), eventMsg{event: e})
		c.Send(a.p.vesselActor(e.B), eventMsg{event: e})
	}
}

// collisionActor forecasts collisions among the predicted trajectories
// crossing its cell.
type collisionActor struct {
	p          *Pipeline
	detector   *events.Detector
	passivator *passivator
}

// Receive implements actor.Actor.
func (a *collisionActor) Receive(c *actor.Context) {
	if a.passivator.touch(c) {
		return
	}
	m, ok := c.Message().(forecastMsg)
	if !ok {
		return
	}
	for _, e := range a.detector.Update(m.forecast, m.at) {
		// Several collision actors can see the same pair (the forecast
		// is shared with every touched cell and its neighbours); the
		// pipeline deduplicates system-wide.
		if !a.p.shouldEmitPair("cx/"+e.PairKey(), m.at, 5*time.Minute) {
			continue
		}
		a.p.log.Append(e)
		c.Send(a.p.writerFor(e.A), eventMsg{event: e})
		c.Send(a.p.vesselActor(e.A), eventMsg{event: e})
		c.Send(a.p.vesselActor(e.B), eventMsg{event: e})
	}
}

// writerActor persists actor outputs into the kvstore middleware: the
// vessel state hash, the event sorted set and a pub/sub notification —
// the read side the HTTP API serves.
type writerActor struct {
	p *Pipeline
}

// Receive implements actor.Actor.
func (w *writerActor) Receive(c *actor.Context) {
	switch m := c.Message().(type) {
	case stateMsg:
		w.writeState(m)
	case eventMsg:
		w.writeEvent(m.event)
	case ckptMsg:
		w.p.saveCheckpoint(m.mmsi, m.reports)
	}
}

// StateOutput is the document produced onto the states output topic.
type StateOutput struct {
	Report   ais.PositionReport
	Forecast []events.ForecastPoint
}

func (w *writerActor) writeState(m stateMsg) {
	if ob := w.p.cfg.OutputBroker; ob != nil {
		ob.Produce(w.p.cfg.OutputStatesTopic, m.report.MMSI.String(),
			StateOutput{Report: m.report, Forecast: m.forecast})
	}
	key := "vessel:" + m.report.MMSI.String()
	st := w.p.kv
	static, haveStatic := w.p.Static(m.report.MMSI)
	if w.p.cfg.Feed != nil {
		// Push transports: the frame rides the actor EventStream the
		// feed hub is attached to. The hub's bounded per-subscriber
		// rings guarantee this publish never blocks the writer.
		w.p.system.Events().Publish(feed.State{
			MMSI: m.report.MMSI, Name: static.Name,
			Lat: m.report.Lat, Lon: m.report.Lon,
			SOG: m.report.SOG, COG: m.report.COG,
			Status:   m.report.Status.String(),
			TS:       m.report.Timestamp,
			Forecast: m.forecast,
		})
	}
	// One batched write per state update: a single lock acquisition on
	// the store instead of one per field.
	fields := map[string]string{
		"lat":    strconv.FormatFloat(m.report.Lat, 'f', 5, 64),
		"lon":    strconv.FormatFloat(m.report.Lon, 'f', 5, 64),
		"sog":    strconv.FormatFloat(m.report.SOG, 'f', 1, 64),
		"cog":    strconv.FormatFloat(m.report.COG, 'f', 1, 64),
		"status": m.report.Status.String(),
		"ts":     m.report.Timestamp.UTC().Format(time.RFC3339),
	}
	if len(m.forecast) > 0 {
		fields["forecast"] = encodeForecast(m.forecast)
	}
	if haveStatic {
		fields["name"] = static.Name
		fields["type"] = strconv.Itoa(int(static.ShipType))
	}
	// Writes go through the retry policy; an exhausted write is dropped
	// (degraded mode, counted in seatwin_retry_exhausted_total) — the
	// next report for this vessel rewrites the full document anyway.
	hint := uint64(m.report.MMSI)
	w.p.retryDo(hint, func() error {
		_, err := st.HSetMulti(key, fields)
		return err
	})
	// The active-vessel index, scored by last report time.
	w.p.retryDo(hint, func() error {
		_, err := st.ZAdd("vessels:active", float64(m.report.Timestamp.Unix()), m.report.MMSI.String())
		return err
	})
}

func (w *writerActor) writeEvent(e events.Event) {
	if ob := w.p.cfg.OutputBroker; ob != nil {
		ob.Produce(w.p.cfg.OutputEventsTopic, e.PairKey(), e)
	}
	if w.p.cfg.Feed != nil {
		w.p.system.Events().Publish(e)
	}
	member := fmt.Sprintf("%s|%s|%s|%.0fm|%s",
		e.Kind, e.A, e.B, e.Meters, e.At.UTC().Format(time.RFC3339))
	w.p.retryDo(uint64(e.A), func() error {
		_, err := w.p.kv.ZAdd("events:"+string(e.Kind), float64(e.At.Unix()), member)
		return err
	})
	w.p.kv.Publish("events", member)
}

// encodeForecast renders forecast points compactly for the store:
// "lat,lon,unix;..." — small enough for a hash field and trivially
// parseable by the API layer.
func encodeForecast(pts []events.ForecastPoint) string {
	buf := make([]byte, 0, len(pts)*32)
	for i, p := range pts {
		if i > 0 {
			buf = append(buf, ';')
		}
		buf = strconv.AppendFloat(buf, p.Pos.Lat, 'f', 5, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.Pos.Lon, 'f', 5, 64)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, p.At.Unix(), 10)
	}
	return string(buf)
}

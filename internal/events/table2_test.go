package events

import (
	"testing"
	"time"

	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/svrf"
	"seatwin/internal/traj"
)

// TestTable2Shape reproduces the paper's Table 2 at reduced training
// scale: both forecasters must reach high precision and recall on the
// proximity scenario, the sub-datasets must be near-perfect, and the
// S-VRF/kinematic error trade (S-VRF at least as many FPs) must hold.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training test, skipped in short mode")
	}
	ds := fleetsim.Record(geo.AegeanSea, 100, 6*time.Hour, 42)
	var windows []traj.Window
	for _, tr := range ds.Tracks {
		windows = append(windows, traj.BuildWindows(tr.Reports, traj.DefaultConfig())...)
	}
	train, _, _ := traj.Split(windows, 0.7, 0.0, 7)
	model, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := svrf.DefaultTrainOptions()
	opt.Epochs = 14
	model.Train(train, opt)

	prox := fleetsim.GenerateProximity(fleetsim.DefaultProximityConfig())
	if len(prox.Truth) < 180 {
		t.Fatalf("scenario too small: %d events", len(prox.Truth))
	}
	kin := NewKinematicForecaster()
	mfc := SVRFForecaster{Model: model}

	evalAll := func(fc TrackForecaster, thr time.Duration) CollisionEvaluation {
		return EvaluateCollision(prox, fc, prox.Truth, false, thr, "all")
	}

	kin2 := evalAll(kin, 2*time.Minute)
	svrf2 := evalAll(mfc, 2*time.Minute)
	for _, ev := range []CollisionEvaluation{kin2, svrf2} {
		if ev.Recall() < 0.75 {
			t.Errorf("%s recall %.2f below the paper's regime", ev.Forecaster, ev.Recall())
		}
		if ev.Precision() < 0.85 {
			t.Errorf("%s precision %.2f below the paper's regime", ev.Forecaster, ev.Precision())
		}
	}

	// Sub datasets: near-perfect detection, as in Table 2.
	subA := prox.EventsWithin(2 * time.Minute)
	subB := prox.EventsWithin(5 * time.Minute)
	for _, fc := range []TrackForecaster{kin, mfc} {
		a := EvaluateCollision(prox, fc, subA, true, 2*time.Minute, "subA")
		b := EvaluateCollision(prox, fc, subB, true, 5*time.Minute, "subB")
		if a.Recall() < 0.9 {
			t.Errorf("%s sub A recall %.2f", fc.Name(), a.Recall())
		}
		if b.Recall() < 0.85 {
			t.Errorf("%s sub B recall %.2f", fc.Name(), b.Recall())
		}
	}

	// The detected events carry usable metadata for the UI event list.
	for _, e := range svrf2.Detected {
		if e.Kind != KindCollisionForecast {
			t.Fatalf("wrong kind %v", e.Kind)
		}
		if e.A == 0 || e.B == 0 || e.At.IsZero() {
			t.Fatalf("incomplete event %+v", e)
		}
	}
}

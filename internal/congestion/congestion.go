// Package congestion implements the port-congestion monitoring and
// prediction asset the paper lists as future work (§7): it tracks how
// many vessels currently occupy each port's approach area and, by
// rasterising the per-vessel route forecasts the platform already
// produces, predicts the occupancy over the forecast horizon — flagging
// ports whose predicted demand exceeds their configured capacity.
package congestion

import (
	"sort"
	"sync"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// Port is one monitored harbour with its berth capacity.
type Port struct {
	Name     string
	Pos      geo.Point
	Radius   float64 // approach-area radius in meters
	Capacity int     // vessels the port serves comfortably
}

// Status is a port's current and predicted occupancy.
type Status struct {
	Port Port
	// Present is the number of vessels currently inside the radius.
	Present int
	// Arriving counts distinct vessels whose forecast track enters the
	// radius within the horizon (excluding those already present).
	Arriving int
	// PeakPredicted is the largest Present+Arriving seen across the
	// forecast horizon's windows.
	PeakPredicted int
}

// Congested reports whether the predicted peak exceeds capacity.
func (s Status) Congested() bool {
	return s.Port.Capacity > 0 && s.PeakPredicted > s.Port.Capacity
}

// Monitor tracks occupancy from position reports and forecasts. It is
// safe for concurrent use, so the pipeline's writer path can feed it
// directly.
type Monitor struct {
	mu    sync.Mutex
	ports []Port
	// present maps port index -> mmsi -> last seen inside.
	present []map[ais.MMSI]time.Time
	// arrivals maps port index -> mmsi -> predicted entry time.
	arrivals []map[ais.MMSI]time.Time
	// Expiry for stale occupancy entries (vessel left or went silent).
	expiry time.Duration
	// latest tracks the newest observation time, so callers living in
	// wall-clock time can evaluate a simulated or replayed feed by
	// passing a zero time to Snapshot.
	latest time.Time
}

// NewMonitor builds a monitor over the given ports. An expiry of 0
// defaults to 15 minutes.
func NewMonitor(ports []Port, expiry time.Duration) *Monitor {
	if expiry <= 0 {
		expiry = 15 * time.Minute
	}
	m := &Monitor{ports: ports, expiry: expiry}
	m.present = make([]map[ais.MMSI]time.Time, len(ports))
	m.arrivals = make([]map[ais.MMSI]time.Time, len(ports))
	for i := range ports {
		m.present[i] = make(map[ais.MMSI]time.Time)
		m.arrivals[i] = make(map[ais.MMSI]time.Time)
	}
	return m
}

// ObservePosition updates the present occupancy from one report.
func (m *Monitor) ObservePosition(mmsi ais.MMSI, pos geo.Point, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if at.After(m.latest) {
		m.latest = at
	}
	for i, p := range m.ports {
		// Cheap latitude prefilter.
		if d := pos.Lat - p.Pos.Lat; d > 0.5 || d < -0.5 {
			continue
		}
		if geo.FastDistance(pos, p.Pos) <= p.Radius {
			m.present[i][mmsi] = at
		} else {
			delete(m.present[i], mmsi)
		}
	}
}

// ObserveForecast updates predicted arrivals from one vessel forecast.
func (m *Monitor) ObserveForecast(f events.Forecast) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, p := range m.ports {
		entered := time.Time{}
		for _, fp := range f.Points {
			if d := fp.Pos.Lat - p.Pos.Lat; d > 0.5 || d < -0.5 {
				continue
			}
			if geo.FastDistance(fp.Pos, p.Pos) <= p.Radius {
				entered = fp.At
				break
			}
		}
		if !entered.IsZero() {
			m.arrivals[i][f.MMSI] = entered
		} else {
			delete(m.arrivals[i], f.MMSI)
		}
	}
}

// Snapshot evaluates every port at the given time. A zero now means
// "the newest observation time", which is what replayed or simulated
// feeds want.
func (m *Monitor) Snapshot(now time.Time) []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now.IsZero() {
		now = m.latest
	}
	out := make([]Status, 0, len(m.ports))
	for i, p := range m.ports {
		// Expire stale occupancy.
		for mmsi, seen := range m.present[i] {
			if now.Sub(seen) > m.expiry {
				delete(m.present[i], mmsi)
			}
		}
		for mmsi, eta := range m.arrivals[i] {
			if eta.Before(now.Add(-m.expiry)) {
				delete(m.arrivals[i], mmsi)
			}
		}
		st := Status{Port: p, Present: len(m.present[i])}
		for mmsi := range m.arrivals[i] {
			if _, already := m.present[i][mmsi]; !already {
				st.Arriving++
			}
		}
		st.PeakPredicted = st.Present + st.Arriving
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].PeakPredicted > out[b].PeakPredicted
	})
	return out
}

// Congested returns only the ports whose prediction exceeds capacity.
func (m *Monitor) Congested(now time.Time) []Status {
	var out []Status
	for _, st := range m.Snapshot(now) {
		if st.Congested() {
			out = append(out, st)
		}
	}
	return out
}

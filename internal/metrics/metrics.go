// Package metrics provides the evaluation and observability primitives
// the paper's experiments report: displacement errors (Table 1),
// detection confusion matrices (Table 2), and the moving-window
// processing-time series of the scalability experiment (Figure 6).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// DisplacementError accumulates average displacement error (ADE) per
// prediction horizon, in meters.
type DisplacementError struct {
	sums   []float64
	counts []int
}

// NewDisplacementError creates an accumulator for the given number of
// horizons.
func NewDisplacementError(horizons int) *DisplacementError {
	return &DisplacementError{sums: make([]float64, horizons), counts: make([]int, horizons)}
}

// Add records the error of one prediction at one horizon index.
func (d *DisplacementError) Add(horizon int, errMeters float64) {
	d.sums[horizon] += errMeters
	d.counts[horizon]++
}

// ADE returns the mean error at a horizon.
func (d *DisplacementError) ADE(horizon int) float64 {
	if d.counts[horizon] == 0 {
		return 0
	}
	return d.sums[horizon] / float64(d.counts[horizon])
}

// MeanADE returns the mean over all horizons (the paper's "Mean ADE").
func (d *DisplacementError) MeanADE() float64 {
	sum, n := 0.0, 0
	for h := range d.sums {
		if d.counts[h] > 0 {
			sum += d.ADE(h)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Horizons returns the number of horizons tracked.
func (d *DisplacementError) Horizons() int { return len(d.sums) }

// Count returns the samples recorded at a horizon.
func (d *DisplacementError) Count(horizon int) int { return d.counts[horizon] }

// Confusion is a detection confusion matrix. TN is meaningful only when
// the evaluation enumerates non-event candidates explicitly.
type Confusion struct {
	TP, FP, FN, TN int
}

// Precision returns TP / (TP + FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN) / total. With TN = 0 (no enumerated
// negatives) this degenerates to TP/(TP+FP+FN), close to how Table 2's
// accuracy column behaves.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d P=%.2f R=%.2f F1=%.2f",
		c.TP, c.FP, c.FN, c.TN, c.Precision(), c.Recall(), c.F1())
}

// MovingAverage is the fixed-window mean used in Figure 6 (window of
// 100 actors/messages). It is not safe for concurrent use.
type MovingAverage struct {
	window []float64
	next   int
	filled int
	sum    float64
}

// NewMovingAverage creates a window of the given size.
func NewMovingAverage(size int) *MovingAverage {
	return &MovingAverage{window: make([]float64, size)}
}

// Add inserts a value and returns the current mean.
func (m *MovingAverage) Add(v float64) float64 {
	if m.filled == len(m.window) {
		m.sum -= m.window[m.next]
	} else {
		m.filled++
	}
	m.window[m.next] = v
	m.sum += v
	m.next = (m.next + 1) % len(m.window)
	return m.Mean()
}

// Mean returns the current window mean.
func (m *MovingAverage) Mean() float64 {
	if m.filled == 0 {
		return 0
	}
	return m.sum / float64(m.filled)
}

// Filled reports how many samples the window currently holds.
func (m *MovingAverage) Filled() int { return m.filled }

// LatencyRecorder aggregates processing-time observations with
// reservoir-free exact quantiles up to a capacity, then degrades to a
// coarse histogram. It is safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	cap     int
	count   int64
	sum     time.Duration
	max     time.Duration
}

// NewLatencyRecorder keeps up to capacity exact samples (older samples
// are overwritten ring-style so quantiles reflect recent behaviour).
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &LatencyRecorder{cap: capacity}
}

// Observe records one duration.
func (l *LatencyRecorder) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	if len(l.samples) < l.cap {
		l.samples = append(l.samples, d)
	} else {
		l.samples[int(l.count)%l.cap] = d
	}
}

// Snapshot summarises the recorded latencies.
type Snapshot struct {
	Count                    int64
	Mean, P50, P95, P99, Max time.Duration
}

// Snapshot computes the summary.
func (l *LatencyRecorder) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{Count: l.count, Max: l.max}
	if l.count > 0 {
		s.Mean = time.Duration(int64(l.sum) / l.count)
	}
	if len(l.samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(f float64) time.Duration {
		idx := int(math.Ceil(f*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// Counter is a simple atomic-free mutex counter usable from actors.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Inc adds n and returns the new value.
func (c *Counter) Inc(n int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += n
	return c.v
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Command seatwin-loadgen load-tests the read-side serving layer.
//
// In its default -compare mode it builds the full pipeline twice in
// process — first serving reads from bounded kvstore scans, then from
// materialized views — prefills both with the same seeded fleet, keeps
// the simulator ingesting during measurement, and hammers the HTTP API
// with a mixed GET workload plus a pool of SSE subscribers. The two
// phases land side by side in one JSON report ("before/after"),
// together with two microbenchmarks of the new subsystem: snapshot-read
// allocations per request and the relay tier's sustained subscriber
// count.
//
// Usage:
//
//	seatwin-loadgen [-compare] [-vessels 2000] [-duration 5s] [-conns 16]
//	                [-sse 64] [-seed 1] [-out BENCH_PR7.json]
//	seatwin-loadgen -url http://host:8080 -duration 10s    # external target
//	seatwin-loadgen -smoke                                 # CI: tiny run, exit 1 on any error
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/kvstore"
	"seatwin/internal/pipeline"
	"seatwin/internal/views"
)

type options struct {
	url        string
	vessels    int
	region     string
	seed       int64
	prefill    int
	ingestRate int
	duration   time.Duration
	conns      int
	sse        int
	compare    bool
	smoke      bool
	out        string
}

// endpointStats is one endpoint's measured load-phase behaviour.
type endpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	RPS      float64 `json:"rps"`
	P50us    int64   `json:"p50_us"`
	P99us    int64   `json:"p99_us"`
	MaxUs    int64   `json:"max_us"`
	Bytes    int64   `json:"bytes"`
}

type sseStats struct {
	Subscribers int   `json:"subscribers"`
	Errors      int64 `json:"errors"`
	Frames      int64 `json:"frames"`
}

type phaseReport struct {
	Name       string                   `json:"name"`
	DurationMS int64                    `json:"duration_ms"`
	Ingested   int64                    `json:"ingested"`
	Endpoints  map[string]endpointStats `json:"endpoints"`
	SSE        sseStats                 `json:"sse"`
}

type snapshotReadReport struct {
	Vessels     int     `json:"vessels"`
	Limit       int     `json:"limit"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     int64   `json:"ns_per_op"`
}

type relayReport struct {
	Relays          int   `json:"relays"`
	Subscribers     int64 `json:"subscribers"`
	Frames          int   `json:"frames"`
	MaxPublishUs    int64 `json:"max_publish_us"`
	Relayed         int64 `json:"relayed"`
	LocalFanned     int64 `json:"local_fanned"`
	ConflationDrops int64 `json:"conflation_drops"`
}

type report struct {
	GeneratedUnix     int64               `json:"generated_unix"`
	Config            map[string]any      `json:"config"`
	Phases            []phaseReport       `json:"phases"`
	SpeedupVesselsRPS float64             `json:"speedup_vessels_rps,omitempty"`
	SnapshotRead      *snapshotReadReport `json:"snapshot_read,omitempty"`
	RelayTier         *relayReport        `json:"relay_tier,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "external API base URL (empty = build the pipeline in process)")
	flag.IntVar(&o.vessels, "vessels", 2000, "simulated fleet size (in-process targets)")
	flag.StringVar(&o.region, "region", "europe", "fleet region: aegean | europe | global — denser regions cost more event-detection CPU per report")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed (identical across compared phases)")
	flag.IntVar(&o.prefill, "prefill", 0, "reports ingested before measurement (0 = 2x vessels)")
	flag.IntVar(&o.ingestRate, "ingest-rate", 300, "background reports/s ingested during measurement (0 = none); keep well under pipeline capacity so reads, not writes, are measured")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "measured load window per phase")
	flag.IntVar(&o.conns, "conns", 16, "concurrent HTTP load workers")
	flag.IntVar(&o.sse, "sse", 64, "concurrent SSE subscribers held open during the phase")
	flag.BoolVar(&o.compare, "compare", true, "run a kvstore phase then a views phase and report the speedup")
	flag.BoolVar(&o.smoke, "smoke", false, "CI smoke: one tiny compare iteration, exit non-zero on any request error")
	flag.StringVar(&o.out, "out", "", "write the JSON report to this file (empty = stdout only)")
	flag.Parse()

	if o.smoke {
		o.vessels, o.duration, o.conns, o.sse = 300, 800*time.Millisecond, 4, 8
		o.ingestRate, o.region = 100, "aegean"
		o.compare, o.url = true, ""
	}
	if o.prefill <= 0 {
		o.prefill = 2 * o.vessels
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		Config: map[string]any{
			"vessels": o.vessels, "region": o.region, "seed": o.seed, "prefill": o.prefill,
			"ingest_rate": o.ingestRate,
			"duration_ms": o.duration.Milliseconds(),
			"conns":       o.conns, "sse": o.sse, "smoke": o.smoke,
		},
	}

	switch {
	case o.url != "":
		rep.Phases = append(rep.Phases, runLoad(o, "external", strings.TrimRight(o.url, "/"), nil))
	case o.compare:
		for _, ph := range []struct {
			name     string
			useViews bool
		}{{"kvstore", false}, {"views", true}} {
			tgt := startTarget(o, ph.useViews)
			rep.Phases = append(rep.Phases, runLoad(o, ph.name, tgt.base, tgt.ingested))
			tgt.shutdown()
		}
		before := rep.Phases[0].Endpoints["/api/vessels"].RPS
		after := rep.Phases[1].Endpoints["/api/vessels"].RPS
		if before > 0 {
			rep.SpeedupVesselsRPS = after / before
		}
	default:
		tgt := startTarget(o, true)
		rep.Phases = append(rep.Phases, runLoad(o, "views", tgt.base, tgt.ingested))
		tgt.shutdown()
	}

	if o.url == "" {
		sr := snapshotReadCheck(2000, 100)
		rep.SnapshotRead = &sr
		relays, subs, frames := 128, 100_000, 20_000
		if o.smoke {
			relays, subs, frames = 8, 2_000, 2_000
		}
		rt := relayLoad(relays, subs, frames)
		rep.RelayTier = &rt
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
	if o.out != "" {
		if err := os.WriteFile(o.out, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", o.out)
	}
	if o.smoke {
		smokeCheck(rep)
	}
}

// smokeCheck fails the process when any request errored or the
// zero-allocation snapshot read regressed — the CI contract.
func smokeCheck(rep report) {
	failed := false
	for _, ph := range rep.Phases {
		for ep, s := range ph.Endpoints {
			if s.Errors > 0 || s.Requests == 0 {
				log.Printf("SMOKE FAIL: phase %s %s: %d errors / %d requests", ph.Name, ep, s.Errors, s.Requests)
				failed = true
			}
		}
		if ph.SSE.Errors > 0 {
			log.Printf("SMOKE FAIL: phase %s: %d SSE errors", ph.Name, ph.SSE.Errors)
			failed = true
		}
	}
	if rep.SnapshotRead != nil && rep.SnapshotRead.AllocsPerOp != 0 {
		log.Printf("SMOKE FAIL: snapshot read allocates %.1f/op, want 0", rep.SnapshotRead.AllocsPerOp)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	log.Printf("smoke OK")
}

// target is one in-process pipeline + API instance under test.
type target struct {
	base     string
	ingested func() int64
	shutdown func()
}

// startTarget builds the full serving stack (store, hub, optional
// views, pipeline, HTTP API on a loopback port), prefills it from the
// seeded simulator and leaves the simulator ingesting at a steady pace
// so reads race writes like production.
func startTarget(o options, useViews bool) *target {
	var box geo.BBox
	switch o.region {
	case "aegean":
		box = geo.AegeanSea
	case "europe":
		box = geo.EuropeanCoverage
	case "global":
		box = geo.BBox{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	default:
		log.Fatalf("unknown region %q (want aegean|europe|global)", o.region)
	}
	store := kvstore.New()
	hub := feed.NewHub(feed.Options{RegionResolution: 7})
	var v *views.Views
	if useViews {
		v = views.New(views.Config{RegionResolution: 7})
	}
	cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
	cfg.Store, cfg.Feed, cfg.Views = store, hub, v
	for _, pt := range fleetsim.PortsWithin(box) {
		cfg.Ports = append(cfg.Ports, congestion.Port{Name: pt.Name, Pos: pt.Pos, Radius: 6000, Capacity: 10})
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	api := pipeline.NewAPI(p)
	go func() {
		if err := api.ListenAndServe("127.0.0.1:0"); err != nil && err != http.ErrServerClosed {
			log.Printf("api: %v", err)
		}
	}()
	for api.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	world := fleetsim.NewWorld(fleetsim.Config{
		Vessels: o.vessels, Seed: o.seed, Region: box, KeepSailing: true,
	})
	var ingested int64
	for i := 0; i < o.prefill; i++ {
		r, ok := world.Next()
		if !ok {
			break
		}
		p.Ingest(r.Pos, time.Now())
		ingested++
	}
	p.Drain(30 * time.Second)
	if v != nil {
		v.Refresh() // first epoch is ready before the first request
	}

	// Background ingest trickle: keeps the write side (actors, event
	// detection, view staging) live while reads are measured. The rate
	// is deliberately modest — event detection is O(pairs) trigonometry,
	// and outrunning the pipeline on a small box backlogs the actor
	// mailboxes until the HTTP server is starved of CPU.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if o.ingestRate > 0 {
		batch := o.ingestRate / 20
		if batch < 1 {
			batch = 1
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				for i := 0; i < batch; i++ {
					r, ok := world.Next()
					if !ok {
						return
					}
					p.Ingest(r.Pos, time.Now())
					atomic.AddInt64(&ingested, 1)
				}
			}
		}()
	}

	mode := "kvstore"
	if useViews {
		mode = "views"
	}
	log.Printf("%s target on http://%s (%d vessels, %d prefilled)", mode, api.Addr(), o.vessels, ingested)
	return &target{
		base:     "http://" + api.Addr().String(),
		ingested: func() int64 { return atomic.LoadInt64(&ingested) },
		shutdown: func() {
			close(stop)
			wg.Wait()
			api.Close()
			p.Shutdown(10 * time.Second)
			hub.Close()
			if v != nil {
				v.Close()
			}
			store.Close()
		},
	}
}

// loadEndpoints is the measured GET mix — /api/vessels dominates, the
// way dashboards poll it, with bbox/limit variants and the smaller
// event and congestion bodies mixed in.
var loadEndpoints = []string{
	"/api/vessels",
	"/api/vessels",
	"/api/vessels",
	"/api/vessels?limit=50",
	"/api/vessels?bbox=36.0,23.0,39.0,26.5",
	"/api/events",
	"/api/congestion",
}

// runLoad drives the mixed GET workload plus the SSE pool against base
// for the configured duration and aggregates per-endpoint stats.
func runLoad(o options, name, base string, ingested func() int64) phaseReport {
	transport := &http.Transport{MaxIdleConns: o.conns * 2, MaxIdleConnsPerHost: o.conns * 2}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	defer transport.CloseIdleConnections()

	var startIngested int64
	if ingested != nil {
		startIngested = ingested()
	}

	// SSE pool: held open for the whole phase, counting frames.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	defer sseCancel()
	var sseFrames, sseErrors int64
	var sseWG sync.WaitGroup
	streamURL := base + "/api/stream?events=all&region=37.9,23.6&policy=conflate&buffer=16"
	for i := 0; i < o.sse; i++ {
		sseWG.Add(1)
		go func() {
			defer sseWG.Done()
			req, err := http.NewRequestWithContext(sseCtx, "GET", streamURL, nil)
			if err != nil {
				atomic.AddInt64(&sseErrors, 1)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				if sseCtx.Err() == nil {
					atomic.AddInt64(&sseErrors, 1)
				}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				atomic.AddInt64(&sseErrors, 1)
				return
			}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event:") {
					atomic.AddInt64(&sseFrames, 1)
				}
			}
		}()
	}

	// HTTP workers: round-robin through the endpoint mix until the
	// deadline, recording latency per endpoint.
	type workerStats struct {
		lat   map[string][]int64
		errs  map[string]int64
		bytes map[string]int64
	}
	perWorker := make([]workerStats, o.conns)
	start := time.Now()
	deadline := start.Add(o.duration)
	var wg sync.WaitGroup
	for w := 0; w < o.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := workerStats{
				lat:   map[string][]int64{},
				errs:  map[string]int64{},
				bytes: map[string]int64{},
			}
			for i := w; time.Now().Before(deadline); i++ {
				ep := loadEndpoints[i%len(loadEndpoints)]
				t0 := time.Now()
				resp, err := client.Get(base + ep)
				if err != nil {
					ws.errs[ep]++
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					ws.errs[ep]++
					continue
				}
				ws.lat[ep] = append(ws.lat[ep], time.Since(t0).Microseconds())
				ws.bytes[ep] += n
			}
			perWorker[w] = ws
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sseCancel()
	sseWG.Wait()

	// Merge.
	merged := map[string][]int64{}
	errs := map[string]int64{}
	bytes := map[string]int64{}
	for _, ws := range perWorker {
		for ep, l := range ws.lat {
			merged[ep] = append(merged[ep], l...)
		}
		for ep, n := range ws.errs {
			errs[ep] += n
		}
		for ep, n := range ws.bytes {
			bytes[ep] += n
		}
	}
	eps := map[string]endpointStats{}
	for _, ep := range loadEndpoints {
		lat := merged[ep]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s := endpointStats{
			Requests: int64(len(lat)) + errs[ep],
			Errors:   errs[ep],
			RPS:      float64(len(lat)) / elapsed.Seconds(),
			P50us:    pct(lat, 0.50),
			P99us:    pct(lat, 0.99),
			Bytes:    bytes[ep],
		}
		if len(lat) > 0 {
			s.MaxUs = lat[len(lat)-1]
		}
		eps[ep] = s
	}

	ph := phaseReport{
		Name:       name,
		DurationMS: elapsed.Milliseconds(),
		Endpoints:  eps,
		SSE:        sseStats{Subscribers: o.sse, Errors: sseErrors, Frames: sseFrames},
	}
	if ingested != nil {
		ph.Ingested = ingested() - startIngested
	}
	v := eps["/api/vessels"]
	log.Printf("phase %s: /api/vessels %.0f req/s p50=%dµs p99=%dµs (errors %d); sse frames %d",
		name, v.RPS, v.P50us, v.P99us, v.Errors, sseFrames)
	return ph
}

func pct(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// snapshotReadCheck measures the serving hot path in isolation: one
// pre-encoded default-limit body written to a sink. The acceptance bar
// is zero heap allocations per read.
func snapshotReadCheck(nVessels, limit int) snapshotReadReport {
	v := views.New(views.Config{RefreshInterval: -1})
	defer v.Close()
	base := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	for i := 0; i < nVessels; i++ {
		v.ApplyState(views.VesselState{
			MMSI: ais.MMSI(237000000 + i),
			Name: "LOADGEN", Lat: 35 + float64(i%100)*0.01, Lon: 22.5 + float64(i/100)*0.01,
			SOG: 12, COG: 90, Status: "UnderWayUsingEngine",
			TS: base.Add(time.Duration(i) * time.Second),
			Forecast: []events.ForecastPoint{
				{Pos: geo.Point{Lat: 35.1, Lon: 22.6}, At: base.Add(time.Minute)},
			},
		})
	}
	v.Refresh()
	snap := v.Vessels()
	allocs := testing.AllocsPerRun(500, func() {
		snap.WriteJSON(io.Discard, limit, nil)
	})
	const iters = 100_000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		snap.WriteJSON(io.Discard, limit, nil)
	}
	ns := time.Since(t0).Nanoseconds() / iters
	log.Printf("snapshot read: %d vessels, limit %d: %.1f allocs/op, %d ns/op", nVessels, limit, allocs, ns)
	return snapshotReadReport{Vessels: nVessels, Limit: limit, AllocsPerOp: allocs, NsPerOp: ns}
}

// relayLoad stands up the tiered fan-out — nRelays hub subscriptions
// carrying nSubs local subscribers — and publishes a frame burst,
// verifying the hub's publish cost stays bounded by the relay count
// while the tier absorbs the full local fan-out.
func relayLoad(nRelays, nSubs, frames int) relayReport {
	hub := feed.NewHub(feed.Options{RegionResolution: 7})
	const nVessels = 64
	basePt := geo.Point{Lat: 37.5, Lon: 24.5}
	positions := make([]geo.Point, nVessels)
	cells := make([]string, nVessels)
	for i := range positions {
		positions[i] = geo.Point{Lat: basePt.Lat + float64(i%8)*0.1, Lon: basePt.Lon + float64(i/8%8)*0.1}
		cells[i] = hexgrid.LatLonToCell(positions[i], 7).String()
	}

	relays := make([]*feed.Relay, nRelays)
	for i := range relays {
		var topics []string
		switch i % 5 {
		case 0, 1:
			topics = []string{feed.TopicVesselPrefix + ais.MMSI(237000000+i%nVessels).String()}
		case 2, 3:
			topics = []string{feed.TopicRegionPrefix + cells[i%nVessels]}
		default:
			topics = []string{feed.TopicProximity, feed.TopicCollision, feed.TopicGap}
		}
		r, err := hub.NewRelay(topics, feed.RelayOptions{Buffer: 256})
		if err != nil {
			log.Fatal(err)
		}
		relays[i] = r
	}
	subsPerRelay := (nSubs + nRelays - 1) / nRelays
	policies := []feed.Policy{feed.PolicyDropOldest, feed.PolicyConflate, feed.PolicyDropOldest}
	var wg sync.WaitGroup
	for _, r := range relays {
		for j := 0; j < subsPerRelay; j++ {
			sub, err := r.Subscribe(feed.SubOptions{Buffer: 4, Policy: policies[j%len(policies)]})
			if err != nil {
				log.Fatal(err)
			}
			if j == 0 { // one live consumer per relay
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, ok := sub.Recv(); !ok {
							return
						}
					}
				}()
			}
		}
	}
	subscribers := hub.RelayStats().Subscribers

	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	var maxPublish time.Duration
	for i := 0; i < frames; i++ {
		vi := i % nVessels
		t0 := time.Now()
		hub.PublishState(feed.State{
			MMSI: ais.MMSI(237000000 + vi),
			Lat:  positions[vi].Lat, Lon: positions[vi].Lon,
			SOG: 12, COG: 90, TS: ts,
		})
		if d := time.Since(t0); d > maxPublish {
			maxPublish = d
		}
	}
	// Let the pumps drain so the tier numbers reflect deliveries.
	s := hub.Snapshot()
	tier := hub.RelayStats()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		tier = hub.RelayStats()
		if tier.Relayed+tier.ConflationDrops >= s.Fanned+s.Conflated {
			break
		}
		time.Sleep(time.Millisecond)
	}
	hub.Close()
	wg.Wait()
	log.Printf("relay tier: %d relays carrying %d subscribers, %d frames, max publish %v",
		nRelays, subscribers, frames, maxPublish)
	return relayReport{
		Relays:          nRelays,
		Subscribers:     subscribers,
		Frames:          frames,
		MaxPublishUs:    maxPublish.Microseconds(),
		Relayed:         tier.Relayed,
		LocalFanned:     tier.Fanned,
		ConflationDrops: tier.ConflationDrops,
	}
}

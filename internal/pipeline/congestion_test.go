package pipeline

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

func TestPortCongestionThroughPipeline(t *testing.T) {
	port := congestion.Port{
		Name: "Piraeus", Pos: geo.Point{Lat: 37.925, Lon: 23.600},
		Radius: 5000, Capacity: 2,
	}
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.Ports = []congestion.Port{port}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	// Two vessels inside the approach area, two more inbound at 12 kn
	// from ~20 minutes out.
	inA := geo.Destination(port.Pos, 90, 1500)
	inB := geo.Destination(port.Pos, 180, 2500)
	feedTrack(p, 801000001, inA, 0, 0.1, 3, 30*time.Second, t0)
	feedTrack(p, 801000002, inB, 0, 0.1, 3, 30*time.Second, t0)
	for i, bearing := range []float64{45.0, 315.0} {
		dist := 12*geo.KnotsToMetersPerSecond*20*60 + port.Radius
		start := geo.Destination(port.Pos, bearing, dist)
		inbound := geo.InitialBearing(start, port.Pos)
		feedTrack(p, ais.MMSI(801000003+i), start, inbound, 12, 3, 30*time.Second, t0)
	}
	p.Drain(5 * time.Second)

	mon := p.Congestion()
	if mon == nil {
		t.Fatal("monitor not enabled")
	}
	snap := mon.Snapshot(time.Time{})
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d ports", len(snap))
	}
	st := snap[0]
	if st.Present != 2 {
		t.Fatalf("present %d, want 2", st.Present)
	}
	if st.Arriving != 2 {
		t.Fatalf("arriving %d, want 2", st.Arriving)
	}
	if !st.Congested() {
		t.Fatal("4 predicted vessels over capacity 2 must flag congestion")
	}

	// And over the API.
	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/congestion", nil))
	if rec.Code != 200 {
		t.Fatalf("api status %d", rec.Code)
	}
	var docs []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0]["congested"] != true {
		t.Fatalf("api docs: %v", docs)
	}
}

func TestCongestionAPIWithoutPorts(t *testing.T) {
	p := newTestPipeline(t)
	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/congestion", nil))
	if rec.Code != 404 {
		t.Fatalf("unconfigured monitoring must 404, got %d", rec.Code)
	}
}

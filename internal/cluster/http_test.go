package cluster

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestHTTPControlPlane drives the full Membership surface through the
// HTTP handler + remote client pair: a remote worker must see exactly
// the assignments an in-process one would.
func TestHTTPControlPlane(t *testing.T) {
	c, err := NewCoordinator(CoordinatorOptions{Partitions: 4, HeartbeatTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	rc := NewRemoteCoordinator(srv.URL)
	a, err := rc.Join("w1")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Owned("w1")); got != 4 {
		t.Fatalf("remote join: w1 owns %d of 4", got)
	}

	a2, err := rc.Heartbeat("w1")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Epoch != a.Epoch {
		t.Fatalf("heartbeat with unchanged membership bumped the epoch: %d -> %d", a.Epoch, a2.Epoch)
	}

	// A second remote worker splits the space.
	if _, err := rc.Join("w2"); err != nil {
		t.Fatal(err)
	}
	a3, err := rc.Heartbeat("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(a3.Owned("w1")) != 2 || len(a3.Owned("w2")) != 2 {
		t.Fatalf("after second join: w1=%d w2=%d, want 2/2", len(a3.Owned("w1")), len(a3.Owned("w2")))
	}

	if err := rc.Leave("w2"); err != nil {
		t.Fatal(err)
	}
	a4, err := rc.Heartbeat("w1")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a4.Owned("w1")); got != 4 {
		t.Fatalf("after remote leave: w1 owns %d of 4", got)
	}
}

func TestHTTPRejectsMissingWorker(t *testing.T) {
	c, err := NewCoordinator(CoordinatorOptions{Partitions: 2, HeartbeatTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	rc := NewRemoteCoordinator(srv.URL)
	if _, err := rc.Join(""); err == nil {
		t.Fatal("join without a worker id should fail")
	}
}

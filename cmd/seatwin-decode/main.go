// Command seatwin-decode decodes NMEA 0183 AIVDM sentences (one per
// line, from files or stdin) into JSON documents, assembling
// multi-fragment messages. It is the command-line face of the
// internal/ais codec and doubles as a smoke test against real-world
// receiver logs.
//
// Usage:
//
//	seatwin-decode [file...]            # defaults to stdin
//	seatwin-decode -gen 10              # emit sample sentences instead
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
)

func main() {
	gen := flag.Int("gen", 0, "instead of decoding, generate N sample AIVDM sentences")
	flag.Parse()

	if *gen > 0 {
		generate(*gen)
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		var readers []io.Reader
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	asm := ais.NewAssembler()
	enc := json.NewEncoder(os.Stdout)
	scanner := bufio.NewScanner(in)
	now := time.Now().UTC()
	lines, decoded, bad := 0, 0, 0
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		lines++
		s, err := ais.ParseSentence(line)
		if err != nil {
			bad++
			continue
		}
		msg, err := asm.Push(s, now)
		if err != nil {
			bad++
			continue
		}
		if msg == nil {
			continue // fragment, waiting for the rest
		}
		decoded++
		switch m := msg.(type) {
		case ais.PositionReport:
			enc.Encode(map[string]any{
				"type": "position", "mmsi": m.MMSI.String(),
				"lat": m.Lat, "lon": m.Lon, "sog": m.SOG, "cog": m.COG,
				"heading": m.Heading, "status": m.Status.String(),
			})
		case ais.StaticVoyage:
			enc.Encode(map[string]any{
				"type": "static", "mmsi": m.MMSI.String(),
				"name": m.Name, "callsign": m.Callsign, "imo": m.IMO,
				"shiptype": m.ShipType, "length": m.Length(), "beam": m.Beam(),
				"draught": m.Draught, "destination": m.Destination,
			})
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d lines, %d messages decoded, %d rejected\n", lines, decoded, bad)
}

// generate prints sample sentences from the fleet simulator's wire
// feed, handy for piping back into the decoder or other tools.
func generate(n int) {
	world := fleetsim.NewWorld(fleetsim.Config{
		Vessels: 25, Seed: 1, Region: geo.AegeanSea, KeepSailing: true,
	})
	feed := fleetsim.NewWireFeed(world)
	for i := 0; i < n; i++ {
		line, ok := feed.Next()
		if !ok {
			return
		}
		fmt.Println(line.Line)
	}
}

package vtff

import (
	"math"
	"testing"

	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

func TestFitARRecoversKnownProcess(t *testing.T) {
	// y_t = 0.6*y_{t-1} + 0.3*y_{t-2} + 2, started from known values.
	series := []float64{5, 6}
	for len(series) < 60 {
		n := len(series)
		series = append(series, 0.6*series[n-1]+0.3*series[n-2]+2)
	}
	coef, intercept, ok := fitAR(series, 2)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(coef[0]-0.6) > 0.05 || math.Abs(coef[1]-0.3) > 0.05 {
		t.Fatalf("coefficients %v", coef)
	}
	if math.Abs(intercept-2) > 0.5 {
		t.Fatalf("intercept %f", intercept)
	}
}

func TestFitARTooShort(t *testing.T) {
	if _, _, ok := fitAR([]float64{1, 2, 3}, 3); ok {
		t.Fatal("short series must not fit")
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	a := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	b := []float64{3, -2, 7}
	x, ok := solveLinear(a, b, 3)
	if !ok {
		t.Fatal("identity must solve")
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
	// Singular system refused.
	sing := []float64{1, 2, 2, 4}
	if _, ok := solveLinear(sing, []float64{1, 2}, 2); ok {
		t.Fatal("singular must fail")
	}
}

func TestDirectARForecastTrend(t *testing.T) {
	cell := hexgrid.LatLonToCell(geo.Point{Lat: 37.5, Lon: 24.5}, 7)
	// Steadily growing traffic: 1, 2, 3, ... the AR model should
	// extrapolate the trend where persistence would stay flat.
	history := map[int64]Flow{}
	for w := int64(1); w <= 12; w++ {
		history[w] = Flow{cell: int(w)}
	}
	ar := DirectARForecast(history, 12, 3, 12)
	persist := Direct(history, 12, 3, DirectPersistence)
	if ar[13][cell] <= persist[13][cell] {
		t.Fatalf("AR did not extrapolate the trend: ar=%d persist=%d",
			ar[13][cell], persist[13][cell])
	}
	if ar[15][cell] < 13 || ar[15][cell] > 18 {
		t.Fatalf("h=3 extrapolation %d implausible for trend 1..12", ar[15][cell])
	}
}

func TestDirectARForecastConstantSeries(t *testing.T) {
	cell := hexgrid.LatLonToCell(geo.Point{Lat: 38.5, Lon: 23.5}, 7)
	history := map[int64]Flow{}
	for w := int64(1); w <= 12; w++ {
		history[w] = Flow{cell: 4}
	}
	ar := DirectARForecast(history, 12, 2, 12)
	for h := int64(13); h <= 14; h++ {
		if got := ar[h][cell]; got < 3 || got > 5 {
			t.Fatalf("constant series forecast %d", got)
		}
	}
}

func TestDirectARForecastNeverNegative(t *testing.T) {
	cell := hexgrid.LatLonToCell(geo.Point{Lat: 36.5, Lon: 26.5}, 7)
	// Sharply decaying traffic.
	history := map[int64]Flow{}
	vals := []int{9, 7, 5, 4, 3, 2, 2, 1, 1, 0, 0, 0}
	for i, v := range vals {
		f := Flow{}
		if v > 0 {
			f[cell] = v
		}
		history[int64(i+1)] = f
	}
	ar := DirectARForecast(history, 12, 6, 12)
	for h := int64(13); h <= 18; h++ {
		if ar[h][cell] < 0 {
			t.Fatalf("negative traffic at %d", h)
		}
	}
}

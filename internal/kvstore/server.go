package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server exposes a Store over TCP speaking a RESP subset (the Redis
// wire protocol), so the middleware/UI side of the architecture can be
// pointed at it exactly as it would be at Redis.
//
// Supported commands: PING, ECHO, SET [EX seconds], GET, DEL, EXISTS,
// EXPIRE, TTL, KEYS, DBSIZE, HSET, HMSET, HGET, HGETALL, HDEL, HLEN, ZADD,
// ZSCORE, ZREM, ZCARD, ZRANGEBYSCORE, PUBLISH, SUBSCRIBE.
type Server struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a store; call Serve or ListenAndServe to start.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:6379") and serves
// until Close. It returns the bound address via Addr once listening.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("kvstore: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		if len(args) == 0 {
			continue
		}
		if strings.EqualFold(args[0], "SUBSCRIBE") {
			s.serveSubscription(conn, w, args[1:])
			return
		}
		s.dispatch(w, args)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Protocol limits: a hostile length header must not make the server
// pre-allocate unbounded memory (Redis enforces similar caps).
const (
	maxCommandArgs = 1024
	maxBulkBytes   = 8 << 20
)

// readCommand parses one RESP array of bulk strings, also accepting
// inline space-separated commands (like redis-cli's inline mode).
func readCommand(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, nil
	}
	if line[0] != '*' {
		return strings.Fields(line), nil
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > maxCommandArgs {
		return nil, fmt.Errorf("kvstore: bad array header %q", line)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("kvstore: expected bulk string, got %q", hdr)
		}
		l, err := strconv.Atoi(hdr[1:])
		if err != nil || l < 0 || l > maxBulkBytes {
			return nil, fmt.Errorf("kvstore: bad bulk length %q", hdr)
		}
		buf := make([]byte, l+2)
		if _, err := readFull(r, buf); err != nil {
			return nil, err
		}
		args = append(args, string(buf[:l]))
	}
	return args, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func writeSimple(w *bufio.Writer, s string) { fmt.Fprintf(w, "+%s\r\n", s) }
func writeError(w *bufio.Writer, s string)  { fmt.Fprintf(w, "-ERR %s\r\n", s) }
func writeInt(w *bufio.Writer, n int64)     { fmt.Fprintf(w, ":%d\r\n", n) }
func writeBulk(w *bufio.Writer, s string)   { fmt.Fprintf(w, "$%d\r\n%s\r\n", len(s), s) }
func writeNil(w *bufio.Writer)              { w.WriteString("$-1\r\n") }
func writeArrayHeader(w *bufio.Writer, n int) {
	fmt.Fprintf(w, "*%d\r\n", n)
}

func (s *Server) dispatch(w *bufio.Writer, args []string) {
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "PING":
		writeSimple(w, "PONG")
	case "ECHO":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for ECHO")
			return
		}
		writeBulk(w, args[1])
	case "SET":
		if len(args) != 3 && !(len(args) == 5 && strings.EqualFold(args[3], "EX")) {
			writeError(w, "syntax: SET key value [EX seconds]")
			return
		}
		if len(args) == 5 {
			secs, err := strconv.Atoi(args[4])
			if err != nil || secs <= 0 {
				writeError(w, "invalid expire time")
				return
			}
			s.store.SetEx(args[1], args[2], time.Duration(secs)*time.Second)
		} else {
			s.store.Set(args[1], args[2])
		}
		writeSimple(w, "OK")
	case "GET":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for GET")
			return
		}
		v, ok, err := s.store.Get(args[1])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		if !ok {
			writeNil(w)
			return
		}
		writeBulk(w, v)
	case "DEL":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for DEL")
			return
		}
		writeInt(w, int64(s.store.Del(args[1:]...)))
	case "EXISTS":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for EXISTS")
			return
		}
		if s.store.Exists(args[1]) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "EXPIRE":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for EXPIRE")
			return
		}
		secs, err := strconv.Atoi(args[2])
		if err != nil {
			writeError(w, "invalid expire time")
			return
		}
		if s.store.Expire(args[1], time.Duration(secs)*time.Second) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "TTL":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for TTL")
			return
		}
		ttl, ok := s.store.TTL(args[1])
		switch {
		case !ok:
			writeInt(w, -2)
		case ttl < 0:
			writeInt(w, -1)
		default:
			writeInt(w, int64(ttl.Seconds()))
		}
	case "KEYS":
		keys := s.store.Keys()
		writeArrayHeader(w, len(keys))
		for _, k := range keys {
			writeBulk(w, k)
		}
	case "DBSIZE":
		writeInt(w, int64(s.store.Len()))
	case "HSET":
		if len(args) != 4 {
			writeError(w, "wrong number of arguments for HSET")
			return
		}
		isNew, err := s.store.HSet(args[1], args[2], args[3])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		if isNew {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "HMSET":
		// HMSET key field value [field value ...] — the batched form the
		// writer actors use internally; replies with the new-field count.
		if len(args) < 4 || len(args)%2 != 0 {
			writeError(w, "wrong number of arguments for HMSET")
			return
		}
		fields := make(map[string]string, (len(args)-2)/2)
		for i := 2; i < len(args); i += 2 {
			fields[args[i]] = args[i+1]
		}
		added, err := s.store.HSetMulti(args[1], fields)
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeInt(w, int64(added))
	case "HGET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for HGET")
			return
		}
		v, ok, err := s.store.HGet(args[1], args[2])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		if !ok {
			writeNil(w)
			return
		}
		writeBulk(w, v)
	case "HGETALL":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for HGETALL")
			return
		}
		m, err := s.store.HGetAll(args[1])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeArrayHeader(w, len(m)*2)
		for f, v := range m {
			writeBulk(w, f)
			writeBulk(w, v)
		}
	case "HDEL":
		if len(args) < 3 {
			writeError(w, "wrong number of arguments for HDEL")
			return
		}
		n, err := s.store.HDel(args[1], args[2:]...)
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeInt(w, int64(n))
	case "HLEN":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for HLEN")
			return
		}
		n, err := s.store.HLen(args[1])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeInt(w, int64(n))
	case "ZADD":
		if len(args) != 4 {
			writeError(w, "wrong number of arguments for ZADD")
			return
		}
		score, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			writeError(w, "invalid score")
			return
		}
		isNew, err := s.store.ZAdd(args[1], score, args[3])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		if isNew {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "ZSCORE":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for ZSCORE")
			return
		}
		sc, ok, err := s.store.ZScore(args[1], args[2])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		if !ok {
			writeNil(w)
			return
		}
		writeBulk(w, strconv.FormatFloat(sc, 'g', -1, 64))
	case "ZREM":
		if len(args) < 3 {
			writeError(w, "wrong number of arguments for ZREM")
			return
		}
		n, err := s.store.ZRem(args[1], args[2:]...)
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeInt(w, int64(n))
	case "ZCARD":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for ZCARD")
			return
		}
		n, err := s.store.ZCard(args[1])
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeInt(w, int64(n))
	case "ZRANGEBYSCORE":
		if len(args) != 4 {
			writeError(w, "wrong number of arguments for ZRANGEBYSCORE")
			return
		}
		min, err1 := parseScoreBound(args[2])
		max, err2 := parseScoreBound(args[3])
		if err1 != nil || err2 != nil {
			writeError(w, "invalid score range")
			return
		}
		members, err := s.store.ZRangeByScore(args[1], min, max)
		if err != nil {
			writeError(w, err.Error())
			return
		}
		writeArrayHeader(w, len(members))
		for _, m := range members {
			writeBulk(w, m.Member)
		}
	case "PUBLISH":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for PUBLISH")
			return
		}
		writeInt(w, int64(s.store.Publish(args[1], args[2])))
	default:
		writeError(w, fmt.Sprintf("unknown command '%s'", args[0]))
	}
}

// parseScoreBound parses a ZRANGEBYSCORE bound, accepting the Redis
// infinity sentinels.
func parseScoreBound(s string) (float64, error) {
	switch s {
	case "-inf":
		return negInf, nil
	case "+inf", "inf":
		return posInf, nil
	}
	return strconv.ParseFloat(s, 64)
}

// serveSubscription switches the connection into subscriber mode: it
// confirms each channel and then pushes messages until the peer hangs
// up.
func (s *Server) serveSubscription(conn net.Conn, w *bufio.Writer, channels []string) {
	if len(channels) == 0 {
		writeError(w, "wrong number of arguments for SUBSCRIBE")
		w.Flush()
		return
	}
	merged := make(chan Message, 256)
	var cancels []func()
	for i, ch := range channels {
		sub, cancel := s.store.Subscribe(ch, 256)
		cancels = append(cancels, cancel)
		go func(c <-chan Message) {
			for m := range c {
				select {
				case merged <- m:
				default:
				}
			}
		}(sub)
		writeArrayHeader(w, 3)
		writeBulk(w, "subscribe")
		writeBulk(w, ch)
		writeInt(w, int64(i+1))
	}
	w.Flush()
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	// Detect client hang-up even while no messages flow.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		case m := <-merged:
			writeArrayHeader(w, 3)
			writeBulk(w, "message")
			writeBulk(w, m.Channel)
			writeBulk(w, m.Payload)
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

package nn

// Training-only AVX2/FMA kernels (kernel_train_amd64.s). Both are
// gated by the same hasAVX2FMA check as the inference GEMV and are only
// reached on the fusedTrain vector path, which requires hidden to be a
// positive multiple of 4.

// dotRows4AVX2 accumulates row dot products in groups of four:
// y[r] += dot(w[r*stride : r*stride+cols], x[:cols]) for every
// r in [0, 4*groups). cols must be a positive multiple of 4; stride is
// in elements. The backward pass uses it with the transposed hidden
// block (rows of length 4H, stride 4H, groups = hidden/4) to compute
// the hidden-state gradient GEMV.
//
//go:noescape
func dotRows4AVX2(w, x, y *float64, groups, cols, stride int)

// deferredRank1AVX2 accumulates every timestep's rank-1 weight-gradient
// update in one GEMM-shaped call:
// gw[r*gwStride + c] += sum over t of a[t*aStride + r] * x[t*xStride + c]
// for r in [0, rows), c in [0, cols), t in [0, steps). rows must be a
// positive multiple of 4, cols a positive multiple of 4, steps >= 1;
// strides are in elements. Registers hold a 4-row x 8-column tile of gw
// across the whole t loop, so each gradient element is loaded and
// stored once per sample instead of once per timestep — the per-step
// rank-1 form was memory-bound on exactly that re-streaming.
//
//go:noescape
func deferredRank1AVX2(gw, x, a *float64, rows, cols, steps, gwStride, xStride, aStride int)

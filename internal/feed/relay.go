package feed

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrRelayClosed rejects operations on a shut-down relay.
var ErrRelayClosed = errors.New("feed: relay closed")

// RelayOptions configure one relay tier.
type RelayOptions struct {
	// Buffer is the capacity of the relay's single upstream ring
	// (<=0 selects 1024). The upstream ring always conflates by key:
	// when the relay tier falls behind, stale per-vessel states are
	// replaced in place and only the newest survives.
	Buffer int
	// LocalBuffer is the default ring capacity for local subscribers
	// (<=0 selects the hub default).
	LocalBuffer int
}

// RelayStats is a snapshot of one relay's instrumentation.
type RelayStats struct {
	Subscribers     int64 // currently attached local subscribers
	TotalSubs       int64 // ever attached
	Relayed         int64 // frames pumped out of the upstream ring
	Fanned          int64 // deliveries enqueued to local rings
	ConflationDrops int64 // upstream frames conflated away or evicted before the pump saw them
	LocalDropped    int64 // frames evicted from local rings by drop-oldest
	LocalConflated  int64 // frames replaced in place in local rings
	Disconnected    int64 // local subscribers closed by the disconnect policy
	Closed          bool
}

// Relay is a tiered fan-out stage: ONE upstream hub subscription
// multiplexed onto any number of local subscriber rings by a single
// pump goroutine. Attaching the N-th local subscriber costs the hub
// nothing — the publisher still performs exactly one ring push per
// relay, so subscriber count stops multiplying publisher work. The
// price is the relay's conflating upstream ring: when the pump (or
// everything downstream of it) falls behind, per-key frames collapse
// to the newest and the loss is reported as ConflationDrops rather
// than publisher back-pressure.
//
// The intended deployment is one relay per heavily-subscribed topic
// set (a busy region, the event classes) per frontend process, with
// SSE/TCP clients attached locally.
type Relay struct {
	hub       *Hub
	upstream  *Subscription
	defBuffer int

	mu     sync.RWMutex
	subs   map[*RelaySub]struct{}
	closed bool

	subCount  atomic.Int64
	totSubs   atomic.Int64
	relayed   atomic.Int64
	fanned    atomic.Int64
	localDrop atomic.Int64
	localConf atomic.Int64
	discon    atomic.Int64

	done chan struct{}
}

// NewRelay subscribes a relay to the given hub topics and starts its
// pump. Close the relay (or the hub) to stop it.
func (h *Hub) NewRelay(topics []string, opt RelayOptions) (*Relay, error) {
	if opt.Buffer <= 0 {
		opt.Buffer = 1024
	}
	if opt.LocalBuffer <= 0 {
		opt.LocalBuffer = h.defBuffer
	}
	up, err := h.Subscribe(topics, SubOptions{Buffer: opt.Buffer, Policy: PolicyConflate})
	if err != nil {
		return nil, err
	}
	r := &Relay{
		hub:       h,
		upstream:  up,
		defBuffer: opt.LocalBuffer,
		subs:      make(map[*RelaySub]struct{}),
		done:      make(chan struct{}),
	}
	h.addRelay(r)
	go r.pump()
	return r, nil
}

// Subscribe attaches a local subscriber to the relay's feed.
func (r *Relay) Subscribe(opt SubOptions) (*RelaySub, error) {
	if opt.Buffer <= 0 {
		opt.Buffer = r.defBuffer
	}
	sub := &RelaySub{relay: r, ring: newRing(opt.Buffer, opt.Policy)}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRelayClosed
	}
	r.subs[sub] = struct{}{}
	r.mu.Unlock()
	r.subCount.Add(1)
	r.totSubs.Add(1)
	return sub, nil
}

// pump is the relay's single consuming goroutine: it drains the
// upstream ring and repeats each frame into every local ring. Local
// pushes are O(1) and never wait, so one slow local subscriber cannot
// stall its siblings any more than it could stall the hub.
func (r *Relay) pump() {
	defer close(r.done)
	var evict []*RelaySub
	for {
		f, ok := r.upstream.ring.pop()
		if !ok {
			r.shutdown(r.upstream.Err())
			return
		}
		r.relayed.Add(1)
		evict = evict[:0]
		r.mu.RLock()
		for sub := range r.subs {
			pushed, conflated, droppedOld := sub.ring.push(f)
			switch {
			case pushed && conflated:
				r.localConf.Add(1)
			case pushed:
				r.fanned.Add(1)
				if droppedOld {
					r.localDrop.Add(1)
				}
			default: // overflow under PolicyDisconnect
				evict = append(evict, sub)
			}
		}
		r.mu.RUnlock()
		for _, sub := range evict {
			r.discon.Add(1)
			sub.ring.closeNow(ErrSlowConsumer)
			r.remove(sub)
		}
	}
}

// shutdown closes every local subscriber with the upstream closure
// reason and deregisters the relay from its hub.
func (r *Relay) shutdown(err error) {
	if err == nil {
		err = errConsumerClosed // deliberate Close: locals see a clean EOF
	}
	r.mu.Lock()
	r.closed = true
	subs := r.subs
	r.subs = make(map[*RelaySub]struct{})
	r.mu.Unlock()
	for sub := range subs {
		sub.ring.closeNow(err)
		r.subCount.Add(-1)
	}
	r.hub.removeRelay(r)
}

// remove detaches one local subscriber.
func (r *Relay) remove(sub *RelaySub) {
	r.mu.Lock()
	_, had := r.subs[sub]
	delete(r.subs, sub)
	r.mu.Unlock()
	if had {
		r.subCount.Add(-1)
	}
}

// Close stops the relay: the upstream subscription is detached from
// the hub, the pump drains out, and every local subscriber is closed.
// It is idempotent and safe to call concurrently with hub shutdown.
func (r *Relay) Close() {
	r.upstream.Close()
	<-r.done
}

// Topics returns the relay's upstream topic set.
func (r *Relay) Topics() []string { return r.upstream.Topics() }

// Stats returns the relay's instrumentation counters.
func (r *Relay) Stats() RelayStats {
	conf, drop := r.upstream.ring.overflowStats()
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	return RelayStats{
		Subscribers:     r.subCount.Load(),
		TotalSubs:       r.totSubs.Load(),
		Relayed:         r.relayed.Load(),
		Fanned:          r.fanned.Load(),
		ConflationDrops: conf + drop,
		LocalDropped:    r.localDrop.Load(),
		LocalConflated:  r.localConf.Load(),
		Disconnected:    r.discon.Load(),
		Closed:          closed,
	}
}

// RelaySub is one local subscriber attached to a relay. Recv is meant
// for a single consuming goroutine; Close may be called from anywhere.
type RelaySub struct {
	relay *Relay
	ring  *ring
}

// Recv blocks until the next frame is available, returning ok=false
// once the subscription is closed.
func (s *RelaySub) Recv() (Delivery, bool) {
	f, ok := s.ring.pop()
	if !ok {
		return Delivery{}, false
	}
	return Delivery{Type: f.typ, Data: f.data}, true
}

// Err returns why the subscription closed (nil while open or after a
// clean consumer-side / relay-side Close).
func (s *RelaySub) Err() error {
	err := s.ring.closeErr()
	if err == errConsumerClosed {
		return nil
	}
	return err
}

// Close detaches the subscription from its relay and wakes any
// blocked Recv. It is idempotent.
func (s *RelaySub) Close() {
	s.ring.closeNow(errConsumerClosed)
	s.relay.remove(s)
}

// RelayTierStats aggregates every live relay attached to a hub.
type RelayTierStats struct {
	Relays          int
	Subscribers     int64
	Relayed         int64
	Fanned          int64
	ConflationDrops int64
	LocalDropped    int64
	LocalConflated  int64
	Disconnected    int64
}

// RelayStats aggregates the stats of every relay currently attached
// to the hub.
func (h *Hub) RelayStats() RelayTierStats {
	h.relayMu.Lock()
	relays := make([]*Relay, 0, len(h.relays))
	for r := range h.relays {
		relays = append(relays, r)
	}
	h.relayMu.Unlock()
	var agg RelayTierStats
	agg.Relays = len(relays)
	for _, r := range relays {
		st := r.Stats()
		agg.Subscribers += st.Subscribers
		agg.Relayed += st.Relayed
		agg.Fanned += st.Fanned
		agg.ConflationDrops += st.ConflationDrops
		agg.LocalDropped += st.LocalDropped
		agg.LocalConflated += st.LocalConflated
		agg.Disconnected += st.Disconnected
	}
	return agg
}

func (h *Hub) addRelay(r *Relay) {
	h.relayMu.Lock()
	if h.relays == nil {
		h.relays = make(map[*Relay]struct{})
	}
	h.relays[r] = struct{}{}
	h.relayMu.Unlock()
}

func (h *Hub) removeRelay(r *Relay) {
	h.relayMu.Lock()
	delete(h.relays, r)
	h.relayMu.Unlock()
}

package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Truncation must snap lagging committed offsets forward to the new
// retention heads: a group still behind the dropped records can never
// read them, so leaving its offsets in the gap would report phantom lag
// forever.
func TestTruncateSnapsCommittedOffsets(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	c, err := b.Subscribe("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		if _, _, err := b.Produce("t", "k", i); err != nil {
			t.Fatal(err)
		}
	}
	// Consume and commit only the first 10.
	if recs := c.Poll(10, time.Second); len(recs) != 10 {
		t.Fatalf("polled %d records, want 10", len(recs))
	}
	c.Commit()

	// Retention drops everything but the newest 20 (head moves to 80).
	if err := b.Truncate("t", 20); err != nil {
		t.Fatal(err)
	}
	lags, err := b.Lag("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	if lags[0] != 20 {
		t.Fatalf("lag %d after truncate, want 20 (committed snapped to head)", lags[0])
	}

	// The consumer's stale in-flight position (10) snaps forward on read
	// — it must resume at the head, not see dropped offsets.
	recs := c.Poll(100, time.Second)
	if len(recs) != 20 {
		t.Fatalf("polled %d retained records, want 20", len(recs))
	}
	if recs[0].Offset != 80 {
		t.Fatalf("first retained offset %d, want 80", recs[0].Offset)
	}
	c.Commit()
	if lags, _ = b.Lag("t", "g"); lags[0] != 0 {
		t.Fatalf("lag %d after draining, want 0", lags[0])
	}
}

// A consumer that polled records before a truncation and commits after
// it must still win when its position is ahead of the new head — the
// snap only ever advances offsets.
func TestTruncateDoesNotRegressAheadCommit(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	c, err := b.Subscribe("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		if _, _, err := b.Produce("t", "k", i); err != nil {
			t.Fatal(err)
		}
	}
	if recs := c.Poll(90, time.Second); len(recs) != 90 {
		t.Fatalf("polled %d records, want 90", len(recs))
	}
	// Truncate to 20 (head 80) BEFORE the commit: the in-flight position
	// (90) is ahead of the head and must survive the snap.
	if err := b.Truncate("t", 20); err != nil {
		t.Fatal(err)
	}
	c.Commit()
	lags, err := b.Lag("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	if lags[0] != 10 {
		t.Fatalf("lag %d, want 10 (commit at 90 beats snapped head 80)", lags[0])
	}
}

// Truncating while consumers poll, commit and producers append must be
// race-free, and lag accounting must never go negative. Run with -race.
func TestTruncateWhileConsuming(t *testing.T) {
	b := New()
	const partitions = 4
	if err := b.CreateTopic("t", partitions); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Producer: steady append across keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if _, _, err := b.Produce("t", fmt.Sprintf("k%d", i%17), i); err != nil {
				panic(err)
			}
		}
	}()

	// Two consumers in one group, polling and committing.
	for g := 0; g < 2; g++ {
		c, err := b.Subscribe("t", "g")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for !stop.Load() {
				c.Poll(64, time.Millisecond)
				c.Commit()
			}
		}()
	}

	// Retention enforcement racing the consumers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := b.Truncate("t", 32); err != nil {
				panic(err)
			}
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		lags, err := b.Lag("t", "g")
		if err != nil {
			t.Fatal(err)
		}
		for pi, lag := range lags {
			if lag < 0 {
				t.Fatalf("negative lag %d on partition %d", lag, pi)
			}
		}
		for _, gl := range b.GroupLags() {
			if gl.Lag < 0 {
				t.Fatalf("negative group lag %d for %s/%s", gl.Lag, gl.Topic, gl.Group)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

package broker

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestProduceConsumeSingle(t *testing.T) {
	b := New()
	if err := b.CreateTopic("ais", 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := b.Produce("ais", fmt.Sprintf("v%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Subscribe("ais", "g1")
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	for len(got) < 100 {
		recs := c.Poll(50, time.Second)
		if recs == nil {
			t.Fatalf("poll stalled at %d records", len(got))
		}
		got = append(got, recs...)
	}
	if len(got) != 100 {
		t.Fatalf("got %d records", len(got))
	}
	c.Commit()
	lag, _ := b.Lag("ais", "g1")
	for pi, l := range lag {
		if l != 0 {
			t.Errorf("partition %d lag %d after commit", pi, l)
		}
	}
}

func TestPerKeyOrdering(t *testing.T) {
	b := New()
	b.CreateTopic("ais", 8)
	const keys = 20
	const perKey = 50
	for i := 0; i < perKey; i++ {
		for k := 0; k < keys; k++ {
			b.Produce("ais", fmt.Sprintf("mmsi-%d", k), i)
		}
	}
	c, _ := b.Subscribe("ais", "g")
	lastSeen := make(map[string]int)
	total := 0
	for total < keys*perKey {
		recs := c.Poll(100, time.Second)
		if recs == nil {
			t.Fatal("poll stalled")
		}
		for _, r := range recs {
			v := r.Value.(int)
			if prev, ok := lastSeen[r.Key]; ok && v != prev+1 {
				t.Fatalf("key %s: got %d after %d", r.Key, v, prev)
			}
			lastSeen[r.Key] = v
			total++
		}
	}
}

func TestSameKeySamePartition(t *testing.T) {
	b := New()
	b.CreateTopic("t", 16)
	p1, _, _ := b.Produce("t", "vessel-42", 1)
	p2, _, _ := b.Produce("t", "vessel-42", 2)
	if p1 != p2 {
		t.Fatalf("same key mapped to partitions %d and %d", p1, p2)
	}
}

func TestPartitionForDeterministic(t *testing.T) {
	f := func(key string) bool {
		return partitionFor(key, 12) == partitionFor(key, 12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionForInRange(t *testing.T) {
	f := func(key string) bool {
		p := partitionFor(key, 7)
		return p >= 0 && p < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetsMonotonicPerPartition(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	var prev int64 = -1
	for i := 0; i < 50; i++ {
		_, off, err := b.Produce("t", "k", i)
		if err != nil {
			t.Fatal(err)
		}
		if off != prev+1 {
			t.Fatalf("offset %d after %d", off, prev)
		}
		prev = off
	}
}

func TestCommitResumesAfterResubscribe(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		b.Produce("t", "k", i)
	}
	c1, _ := b.Subscribe("t", "g")
	recs := c1.Poll(5, time.Second)
	if len(recs) != 5 {
		t.Fatalf("polled %d", len(recs))
	}
	c1.Commit()
	c1.Close()

	c2, _ := b.Subscribe("t", "g")
	recs = c2.Poll(100, time.Second)
	if len(recs) != 5 {
		t.Fatalf("resumed with %d records, want 5", len(recs))
	}
	if recs[0].Value.(int) != 5 {
		t.Fatalf("resumed at %v, want 5", recs[0].Value)
	}
}

func TestUncommittedRedeliveredAfterRebalance(t *testing.T) {
	// At-least-once: polling without committing and then rebalancing
	// must redeliver from the committed offset.
	b := New()
	b.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		b.Produce("t", "k", i)
	}
	c1, _ := b.Subscribe("t", "g")
	if recs := c1.Poll(10, time.Second); len(recs) != 10 {
		t.Fatalf("polled %d", len(recs))
	}
	// No commit. A new member joining rebalances the group.
	c2, _ := b.Subscribe("t", "g")
	got := 0
	for _, c := range []*Consumer{c1, c2} {
		for {
			recs := c.Poll(10, 50*time.Millisecond)
			if recs == nil {
				break
			}
			got += len(recs)
		}
	}
	if got != 10 {
		t.Fatalf("redelivered %d records, want 10", got)
	}
}

func TestGroupRebalanceSpreadsPartitions(t *testing.T) {
	b := New()
	b.CreateTopic("t", 6)
	c1, _ := b.Subscribe("t", "g")
	if got := len(c1.Assignment()); got != 6 {
		t.Fatalf("single member owns %d partitions, want 6", got)
	}
	c2, _ := b.Subscribe("t", "g")
	a1, a2 := c1.Assignment(), c2.Assignment()
	if len(a1)+len(a2) != 6 {
		t.Fatalf("assignments %v + %v do not cover the topic", a1, a2)
	}
	seen := map[int]bool{}
	for _, p := range append(a1, a2...) {
		if seen[p] {
			t.Fatalf("partition %d assigned twice", p)
		}
		seen[p] = true
	}
	c2.Close()
	if got := len(c1.Assignment()); got != 6 {
		t.Fatalf("after leave, member owns %d partitions, want 6", got)
	}
}

func TestIndependentGroups(t *testing.T) {
	b := New()
	b.CreateTopic("t", 2)
	for i := 0; i < 6; i++ {
		b.Produce("t", fmt.Sprintf("k%d", i), i)
	}
	ca, _ := b.Subscribe("t", "groupA")
	cb, _ := b.Subscribe("t", "groupB")
	ra := ca.Poll(10, time.Second)
	rb := cb.Poll(10, time.Second)
	if len(ra) != 6 || len(rb) != 6 {
		t.Fatalf("groups saw %d and %d records, want 6 each", len(ra), len(rb))
	}
}

func TestTruncateRetention(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	for i := 0; i < 100; i++ {
		b.Produce("t", "k", i)
	}
	b.Truncate("t", 10)
	c, _ := b.Subscribe("t", "g")
	recs := c.Poll(1000, time.Second)
	if len(recs) != 10 {
		t.Fatalf("after retention, polled %d records, want 10", len(recs))
	}
	if recs[0].Value.(int) != 90 {
		t.Fatalf("retention kept wrong tail: first value %v", recs[0].Value)
	}
	if recs[0].Offset != 90 {
		t.Fatalf("offsets must be stable across truncation: got %d", recs[0].Offset)
	}
}

func TestUnknownTopicErrors(t *testing.T) {
	b := New()
	if _, _, err := b.Produce("nope", "k", 1); err == nil {
		t.Error("produce to unknown topic must fail")
	}
	if _, err := b.Subscribe("nope", "g"); err == nil {
		t.Error("subscribe to unknown topic must fail")
	}
	if err := b.CreateTopic("bad", 0); err == nil {
		t.Error("zero partitions must fail")
	}
	if b.Partitions("nope") != 0 {
		t.Error("unknown topic must report 0 partitions")
	}
}

func TestCreateTopicIdempotent(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatalf("re-create with same partitions must be a no-op: %v", err)
	}
	if err := b.CreateTopic("t", 5); err == nil {
		t.Fatal("re-create with different partitions must fail")
	}
}

func TestPollTimeout(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	c, _ := b.Subscribe("t", "g")
	start := time.Now()
	recs := c.Poll(10, 30*time.Millisecond)
	if recs != nil {
		t.Fatalf("empty topic returned %d records", len(recs))
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("poll returned too early: %v", d)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := New()
	b.CreateTopic("t", 8)
	const producers = 8
	const perProducer = 1000

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b.Produce("t", fmt.Sprintf("key-%d-%d", p, i%16), i)
			}
		}(p)
	}

	var consumed sync.Map
	var total int64
	var cwg sync.WaitGroup
	var totalMu sync.Mutex
	for g := 0; g < 3; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			c, _ := b.Subscribe("t", fmt.Sprintf("solo-%d", g))
			count := 0
			deadline := time.Now().Add(10 * time.Second)
			for count < producers*perProducer && time.Now().Before(deadline) {
				recs := c.Poll(256, 100*time.Millisecond)
				count += len(recs)
				c.Commit()
			}
			consumed.Store(g, count)
			totalMu.Lock()
			total += int64(count)
			totalMu.Unlock()
		}(g)
	}
	wg.Wait()
	cwg.Wait()
	consumed.Range(func(k, v any) bool {
		if v.(int) != producers*perProducer {
			t.Errorf("group %v consumed %v records, want %d", k, v, producers*perProducer)
		}
		return true
	})
}

func BenchmarkProduce(b *testing.B) {
	br := New()
	br.CreateTopic("t", 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Produce("t", "key-123456789", i)
	}
}

func BenchmarkProduceConsume(b *testing.B) {
	br := New()
	br.CreateTopic("t", 4)
	c, _ := br.Subscribe("t", "g")
	b.ResetTimer()
	consumed := 0
	for i := 0; i < b.N; i++ {
		br.Produce("t", "k", i)
		if i%256 == 0 {
			consumed += len(c.Poll(512, 0))
		}
	}
	for consumed < b.N {
		recs := c.Poll(1024, time.Second)
		if recs == nil {
			break
		}
		consumed += len(recs)
	}
}

// TestPollWakesOnProduce verifies Poll blocks on the topic's broadcast
// channel instead of sleeping: a record produced mid-wait is returned
// well before the poll deadline.
func TestPollWakesOnProduce(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	c, _ := b.Subscribe("t", "g")

	start := time.Now()
	go func() {
		time.Sleep(30 * time.Millisecond)
		b.Produce("t", "k", "v")
	}()
	recs := c.Poll(10, 10*time.Second)
	elapsed := time.Since(start)
	if len(recs) != 1 {
		t.Fatalf("poll returned %d records", len(recs))
	}
	// The wakeup must come from the produce (~30ms), not the 10s
	// deadline; a generous bound keeps slow CI honest.
	if elapsed > 5*time.Second {
		t.Fatalf("poll woke after %v; wakeup lost", elapsed)
	}
}

// TestCloseUnblocksPoll verifies a consumer blocked in Poll returns
// promptly (nil) when Close is called from another goroutine.
func TestCloseUnblocksPoll(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	c, _ := b.Subscribe("t", "g")

	done := make(chan []Record, 1)
	go func() { done <- c.Poll(10, 10*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case recs := <-done:
		if recs != nil {
			t.Fatalf("closed poll returned %d records", len(recs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Poll")
	}
	// Close is idempotent.
	c.Close()
}

// TestSubscribeWakesBlockedMember verifies a member blocked on an
// empty assignment re-polls when a rebalance hands it data-bearing
// partitions (a new subscriber joining broadcasts the topic).
func TestSubscribeWakesBlockedMember(t *testing.T) {
	b := New()
	b.CreateTopic("t", 2)
	c1, _ := b.Subscribe("t", "g")

	done := make(chan int, 1)
	go func() {
		n := 0
		for {
			recs := c1.Poll(100, 2*time.Second)
			if recs == nil {
				done <- n
				return
			}
			n += len(recs)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// Produce onto both partitions while c1 owns them all.
	for i := 0; i < 10; i++ {
		if _, _, err := b.Produce("t", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if got := <-done; got != 10 {
		t.Fatalf("blocked member consumed %d records, want 10", got)
	}
}

func TestGroupLags(t *testing.T) {
	b := New()
	if err := b.CreateTopic("ais", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := b.Produce("ais", fmt.Sprintf("v%d", i), i); err != nil {
			t.Fatal(err)
		}
	}

	// No groups yet: nothing to report.
	if lags := b.GroupLags(); len(lags) != 0 {
		t.Fatalf("GroupLags with no groups = %v", lags)
	}

	c, err := b.Subscribe("ais", "g1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("ais", "g2"); err != nil {
		t.Fatal(err)
	}
	lags := b.GroupLags()
	if len(lags) != 2 {
		t.Fatalf("GroupLags = %v, want 2 entries", lags)
	}
	for _, gl := range lags {
		if gl.Topic != "ais" || gl.Lag != 10 {
			t.Fatalf("fresh group lag = %+v, want topic ais lag 10", gl)
		}
	}
	if lags[0].Group != "g1" || lags[1].Group != "g2" {
		t.Fatalf("GroupLags not sorted by group: %v", lags)
	}

	// Consuming and committing everything drains g1's lag; g2 stays.
	var n int
	for n < 10 {
		recs := c.Poll(100, time.Second)
		if recs == nil {
			t.Fatalf("poll stalled at %d records", n)
		}
		n += len(recs)
		c.Commit()
	}
	lags = b.GroupLags()
	if lags[0].Group != "g1" || lags[0].Lag != 0 {
		t.Fatalf("committed group lag = %+v, want 0", lags[0])
	}
	if lags[1].Group != "g2" || lags[1].Lag != 10 {
		t.Fatalf("idle group lag = %+v, want 10", lags[1])
	}
}

package views

import (
	"io"
	"strconv"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// populate stages n vessels and refreshes once.
func populate(b *testing.B, v *Views, n int) {
	b.Helper()
	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		v.ApplyState(VesselState{
			MMSI: ais.MMSI(237000001 + i),
			Name: "VESSEL", Lat: 35 + float64(i%600)*0.01, Lon: 22.5 + float64(i/600)*0.01,
			SOG: 12, COG: 90, Status: "under way using engine",
			TS: ts.Add(time.Duration(i) * time.Millisecond),
			Forecast: []events.ForecastPoint{
				{Pos: geo.Point{Lat: 37.6, Lon: 24.6}, At: ts.Add(5 * time.Minute)},
			},
		})
	}
	v.Refresh()
}

// BenchmarkSnapshotRead is the zero-alloc claim: serving /api/vessels
// from a snapshot is one atomic load plus writes of pre-encoded bytes.
// Run with -benchmem; the target is 0 allocs/op.
func BenchmarkSnapshotRead(b *testing.B) {
	v := New(Config{RefreshInterval: -1})
	defer v.Close()
	populate(b, v, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := v.Vessels()
		if _, err := snap.WriteJSON(io.Discard, 100, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotReadBBox is the filtered variant: still lock-free
// and alloc-free, paying one float compare per candidate item.
func BenchmarkSnapshotReadBBox(b *testing.B) {
	v := New(Config{RefreshInterval: -1})
	defer v.Close()
	populate(b, v, 2000)
	box := geo.BBox{MinLat: 35, MinLon: 22.5, MaxLat: 36, MaxLon: 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := v.Vessels()
		if _, err := snap.WriteJSON(io.Discard, 100, &box); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefresh measures the write-side cost the read side no longer
// pays: folding a staged fleet into fresh snapshots. Steady-state (few
// dirty vessels between refreshes) is the realistic case.
func BenchmarkRefresh(b *testing.B) {
	for _, n := range []int{2000, 20000} {
		b.Run(sizeName(n), func(b *testing.B) {
			v := New(Config{RefreshInterval: -1})
			defer v.Close()
			populate(b, v, n)
			ts := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Dirty ~1% of the fleet between refreshes.
				for d := 0; d < n/100; d++ {
					m := ais.MMSI(237000001 + (i*31+d)%n)
					v.ApplyState(VesselState{
						MMSI: m, Lat: 36, Lon: 23, SOG: 10, COG: 45,
						Status: "under way using engine",
						TS:     ts.Add(time.Duration(i*n+d) * time.Millisecond),
					})
				}
				v.Refresh()
			}
		})
	}
}

func sizeName(n int) string {
	if n >= 1000 {
		return strconv.Itoa(n/1000) + "k"
	}
	return strconv.Itoa(n)
}

// Package weather provides the synthetic met-ocean field the paper's
// future-work section (§7) plans to fuse with the H3-indexed AIS data:
// wind and significant wave height as a smooth, deterministic function
// of position and time, plus the enrichment helper that annotates
// hexgrid cells with the conditions — the substitution for a real
// weather-forecast feed (see DESIGN.md).
//
// The field is seeded value noise: pseudo-random values on a coarse
// space-time lattice, interpolated smoothly between lattice points and
// summed over octaves. It is cheap (no state), deterministic for a
// seed, and spatially/temporally coherent — the properties enrichment
// and routing logic actually depend on.
package weather

import (
	"math"
	"time"

	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// Conditions are the met-ocean values at one place and time.
type Conditions struct {
	WindKnots   float64 // sustained wind speed
	WindDirDeg  float64 // direction the wind blows FROM, degrees true
	WaveHeightM float64 // significant wave height
}

// Severe reports whether the conditions exceed typical small-craft
// limits (gale-force wind or heavy seas).
func (c Conditions) Severe() bool {
	return c.WindKnots >= 34 || c.WaveHeightM >= 4
}

// Field is a deterministic synthetic weather field.
type Field struct {
	seed int64
	// spatialScaleDeg is the size of one lattice cell in degrees; the
	// temporalScale that of one step in time.
	spatialScaleDeg float64
	temporalScale   time.Duration
}

// NewField creates a field with ~3 degree weather systems evolving on a
// ~6 hour timescale.
func NewField(seed int64) *Field {
	return &Field{seed: seed, spatialScaleDeg: 3, temporalScale: 6 * time.Hour}
}

// hash maps lattice coordinates to a deterministic value in [0, 1).
func (f *Field) hash(x, y, t, channel int64) float64 {
	h := uint64(f.seed) ^ 0x9E3779B97F4A7C15
	for _, v := range []int64{x, y, t, channel} {
		h ^= uint64(v) * 0xBF58476D1CE4E5B9
		h = (h ^ h>>27) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	return float64(h%(1<<53)) / (1 << 53)
}

// smooth is the C1 fade curve used between lattice points.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// noise3 samples trilinearly interpolated lattice noise.
func (f *Field) noise3(x, y, t float64, channel int64) float64 {
	x0, y0, t0 := math.Floor(x), math.Floor(y), math.Floor(t)
	fx, fy, ft := smooth(x-x0), smooth(y-y0), smooth(t-t0)
	ix, iy, it := int64(x0), int64(y0), int64(t0)

	lerp := func(a, b, f float64) float64 { return a + (b-a)*f }
	var corners [2][2][2]float64
	for dx := int64(0); dx <= 1; dx++ {
		for dy := int64(0); dy <= 1; dy++ {
			for dt := int64(0); dt <= 1; dt++ {
				corners[dx][dy][dt] = f.hash(ix+dx, iy+dy, it+dt, channel)
			}
		}
	}
	return lerp(
		lerp(lerp(corners[0][0][0], corners[1][0][0], fx), lerp(corners[0][1][0], corners[1][1][0], fx), fy),
		lerp(lerp(corners[0][0][1], corners[1][0][1], fx), lerp(corners[0][1][1], corners[1][1][1], fx), fy),
		ft)
}

// fbm sums octaves of noise3 into a value in roughly [0, 1].
func (f *Field) fbm(x, y, t float64, channel int64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	for o := 0; o < 3; o++ {
		scale := math.Pow(2, float64(o))
		sum += amp * f.noise3(x*scale, y*scale, t*scale, channel+int64(o)*1000)
		norm += amp
		amp *= 0.5
	}
	return sum / norm
}

// At samples the field.
func (f *Field) At(p geo.Point, at time.Time) Conditions {
	x := geo.NormalizeLon(p.Lon) / f.spatialScaleDeg
	y := p.Lat / f.spatialScaleDeg
	t := float64(at.Unix()) / f.temporalScale.Seconds()

	wind := f.fbm(x, y, t, 1)
	dir := f.fbm(x, y, t, 2)
	wave := f.fbm(x, y, t, 3)

	// Wind: skewed so calm dominates but storms occur; latitudinal
	// factor adds the westerlies' extra energy at high latitudes.
	latFactor := 1 + 0.5*math.Abs(math.Sin(p.Lat*math.Pi/180))
	windKn := math.Pow(wind, 1.7) * 55 * latFactor
	// Waves follow the wind with their own texture.
	waveM := (0.2 + 0.65*wave + 0.35*wind) * windKn / 12

	return Conditions{
		WindKnots:   windKn,
		WindDirDeg:  dir * 360,
		WaveHeightM: waveM,
	}
}

// EnrichCells annotates each hexgrid cell (by centroid) with the field
// conditions at the given time — the fusion of the weather layer with
// the H3-indexed mobility data.
func (f *Field) EnrichCells(cells []hexgrid.Cell, at time.Time) map[hexgrid.Cell]Conditions {
	out := make(map[hexgrid.Cell]Conditions, len(cells))
	for _, c := range cells {
		if !c.Valid() {
			continue
		}
		out[c] = f.At(c.Center(), at)
	}
	return out
}

// SpeedFactor estimates how much the conditions slow a vessel sailing
// on the given course: head seas cost speed, following seas little —
// the involuntary speed-loss model used for weather-aware routing.
func SpeedFactor(c Conditions, courseDeg float64) float64 {
	if c.WaveHeightM <= 0.5 {
		return 1
	}
	// Relative angle between the course and the direction waves travel
	// toward (opposite of WindDirDeg): 0 = following seas, 180 = head
	// seas.
	rel := geo.CourseDiff(courseDeg, c.WindDirDeg+180)
	headness := (1 - math.Cos(rel*math.Pi/180)) / 2 // 0 following, 1 head
	loss := 0.08 * c.WaveHeightM * headness
	if loss > 0.45 {
		loss = 0.45
	}
	return 1 - loss
}

package events

import (
	"fmt"
	"math"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// BenchmarkDenseCellUpdate sweeps cell occupancy across the map-scan
// oracles and the grid fast paths. Proximity vessels are spread over a
// ~2.2 km fan-in disc (a res-9 cell plus its threshold margin);
// collision forecasts over a ~10 km disc (a res-7 cell plus margin)
// with 3-point kinematic tracks. Detectors are preloaded via Seed so
// the timed loop measures pure steady-state per-report cost.

const benchGolden = 137.50776405003785 // golden angle, degrees

func benchDiscPoint(center geo.Point, i, n int, radius float64) geo.Point {
	ang := math.Mod(float64(i)*benchGolden, 360)
	r := radius * math.Sqrt(float64(i+1)/float64(n))
	return geo.Destination(center, ang, r)
}

func benchProxPoints(occ int) []geo.Point {
	pts := make([]geo.Point, occ)
	for i := range pts {
		pts[i] = benchDiscPoint(geo.Point{Lat: 1.2, Lon: 103.8}, i, occ, 2200)
	}
	return pts
}

func benchForecasts(occ int) []Forecast {
	fcs := make([]Forecast, occ)
	for i := range fcs {
		pos := benchDiscPoint(geo.Point{Lat: 1.2, Lon: 103.8}, i, occ, 10000)
		cog := math.Mod(float64(i)*benchGolden*2, 360)
		fcs[i] = Forecast{MMSI: ais.MMSI(800000000 + i), Points: []ForecastPoint{
			{Pos: pos, At: t0},
			{Pos: geo.DeadReckon(pos, 12, cog, 120), At: t0.Add(2 * time.Minute)},
			{Pos: geo.DeadReckon(pos, 12, cog, 240), At: t0.Add(4 * time.Minute)},
		}}
	}
	return fcs
}

func BenchmarkDenseCellUpdate(b *testing.B) {
	for _, occ := range []int{10, 100, 1000, 5000} {
		occ := occ
		pts := benchProxPoints(occ)
		fcs := benchForecasts(occ)

		b.Run(fmt.Sprintf("proximity/scan/occ=%d", occ), func(b *testing.B) {
			p := NewProximityDetector(DefaultProximityConfig())
			for i := 0; i < occ; i++ {
				p.Seed(ais.MMSI(800000000+i), pts[i], t0)
			}
			at := t0
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				at = at.Add(time.Millisecond)
				p.Update(ais.MMSI(800000000+n%occ), pts[n%occ], at)
			}
		})
		b.Run(fmt.Sprintf("proximity/grid/occ=%d", occ), func(b *testing.B) {
			g := NewGridProximityDetector(DefaultProximityConfig())
			for i := 0; i < occ; i++ {
				g.Seed(ais.MMSI(800000000+i), pts[i], t0)
			}
			at := t0
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				at = at.Add(time.Millisecond)
				g.Update(ais.MMSI(800000000+n%occ), pts[n%occ], at)
			}
		})
		b.Run(fmt.Sprintf("collision/scan/occ=%d", occ), func(b *testing.B) {
			if occ >= 5000 {
				b.Skip("quadratic map-scan oracle is impractical at this occupancy (see BENCH_PR10.json)")
			}
			d := NewDetector(DefaultCollisionConfig(), 10*time.Minute)
			for i := 0; i < occ; i++ {
				d.Seed(fcs[i], t0)
			}
			now := t0
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				now = now.Add(time.Millisecond)
				d.Update(fcs[n%occ], now)
			}
		})
		b.Run(fmt.Sprintf("collision/grid/occ=%d", occ), func(b *testing.B) {
			d := NewGridDetector(DefaultCollisionConfig(), 10*time.Minute)
			for i := 0; i < occ; i++ {
				d.Seed(fcs[i], t0)
			}
			now := t0
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				now = now.Add(time.Millisecond)
				d.Update(fcs[n%occ], now)
			}
		})
	}
}

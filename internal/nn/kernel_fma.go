//go:build arm64

package nn

import "math"

// madd is the compiled kernel's multiply-accumulate. On arm64 the
// math.FMA intrinsic is a single FMADD instruction with no
// feature-check branch, so fusing is free. Fusion changes rounding
// versus the reference path's mul+add, which is why the parity
// contract is 1e-12 rather than bit equality. (On amd64 this was
// measured, not assumed: GOAMD64=v3 VFMADD came out slightly slower
// than the plain mul+add form — the GEMV there is load-bound — and
// under the default GOAMD64=v1 every math.FMA call site carries a
// runtime feature branch, so amd64 keeps the generic kernel.)
func madd(a, b, acc float64) float64 { return math.FMA(a, b, acc) }

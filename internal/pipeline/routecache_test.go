package pipeline

import (
	"sync"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// TestRouteCacheServesWarmLookups proves the cache actually carries the
// hot path: after first contact the vessel route resolves from the
// cache and returns the identical PID the registry holds.
func TestRouteCacheServesWarmLookups(t *testing.T) {
	p := newTestPipeline(t)
	const mmsi ais.MMSI = 239000777
	feedTrack(p, mmsi, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 1, time.Second, t0)
	p.Drain(5 * time.Second)

	cached := p.vesselRoutes.get(uint64(mmsi))
	if cached == nil {
		t.Fatal("vessel route not cached after ingest")
	}
	if reg := p.System().Lookup(vesselActorName(mmsi)); reg != cached {
		t.Fatalf("cache (%v) and registry (%v) disagree", cached, reg)
	}
	if got := p.vesselActor(mmsi); got != cached {
		t.Fatalf("vesselActor returned %v, want cached %v", got, cached)
	}
}

// TestRouteCacheInvalidatedOnStop proves a stopped (passivated) actor's
// route is dropped through the unregister hook and never served again:
// a re-ingest after the stop must reach a fresh actor, not the corpse.
func TestRouteCacheInvalidatedOnStop(t *testing.T) {
	p := newTestPipeline(t)
	const mmsi ais.MMSI = 239000778
	feedTrack(p, mmsi, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 1, time.Second, t0)
	p.Drain(5 * time.Second)

	old := p.vesselRoutes.get(uint64(mmsi))
	if old == nil {
		t.Fatal("vessel route not cached after ingest")
	}
	if err := p.System().StopWait(old, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if pid := p.vesselRoutes.get(uint64(mmsi)); pid != nil {
		t.Fatalf("dead PID %v still served from route cache", pid)
	}

	// Re-ingest: the slow path must spawn a fresh actor and the report
	// must land in the store (a resurrected corpse would black-hole it).
	at := t0.Add(time.Hour)
	feedTrack(p, mmsi, geo.Point{Lat: 38.0, Lon: 25.0}, 90, 12, 1, time.Second, at)
	p.Drain(5 * time.Second)
	if fresh := p.vesselActor(mmsi); fresh == old {
		t.Fatal("route cache resurrected a stopped actor")
	}
	h, err := p.Store().HGetAll("vessel:" + mmsi.String())
	if err != nil || h["ts"] != at.Format(time.RFC3339) {
		t.Fatalf("post-restart report not persisted: ts=%q err=%v", h["ts"], err)
	}
}

// TestRouteCacheChurnUnderRace hammers spawn/stop/re-ingest cycles from
// concurrent goroutines (run under -race in CI): ingest workers resolve
// vessels through the cache while a reaper keeps stopping those same
// actors. The invariant is liveness — after the churn stops, a final
// settled round must still land every vessel's state in the store, so a
// cached PID can never be permanently resurrected after passivation.
func TestRouteCacheChurnUnderRace(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.DisableEventFanout = true
	cfg.CheckpointInterval = -1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	const vessels = 8
	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	reaperDone := make(chan struct{})

	// Reaper: keeps killing the vessel actors mid-flight.
	go func() {
		defer close(reaperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < vessels; i++ {
				if pid := p.System().Lookup(vesselActorName(ais.MMSI(239100000 + i))); pid != nil {
					p.System().Stop(pid)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Ingest workers: two writers racing the reaper through the cache.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				at := t0.Add(time.Duration(r) * time.Second)
				for i := 0; i < vessels; i++ {
					p.Ingest(ais.PositionReport{
						MMSI: ais.MMSI(239100000 + i),
						Lat:  37.5, Lon: 24.5, SOG: 10, COG: 90,
						Status: ais.StatusUnderWayEngine, Timestamp: at,
					}, at)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-reaperDone

	// Settled rounds: the reaper is gone, but a Stop it issued may still
	// be completing, so one delivery can race a dying actor (the broker
	// redelivers in production). The liveness invariant under test is
	// that re-ingest lands within a bounded number of rounds — a cache
	// that served a permanently resurrected PID would black-hole every
	// attempt.
	for i := 0; i < vessels; i++ {
		mmsi := ais.MMSI(239100000 + i)
		key := "vessel:" + mmsi.String()
		landed := false
		for attempt := 0; attempt < 50 && !landed; attempt++ {
			at := t0.Add(time.Hour + time.Duration(attempt)*time.Second)
			p.Ingest(ais.PositionReport{
				MMSI: mmsi, Lat: 38.0, Lon: 25.0, SOG: 10, COG: 90,
				Status: ais.StatusUnderWayEngine, Timestamp: at,
			}, at)
			p.Drain(5 * time.Second)
			h, err := p.Store().HGetAll(key)
			if err != nil {
				t.Fatal(err)
			}
			landed = h["ts"] == at.Format(time.RFC3339)
		}
		if !landed {
			t.Fatalf("vessel %d: settled reports never landed after churn", i)
		}
	}
}

// TestRouteCachePassivationDropsCellRoutes proves cell/collision actor
// passivation (the idle-timeout path, not an explicit Stop) flows
// through the unregister hook into the route caches.
func TestRouteCachePassivationDropsCellRoutes(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.CellIdleTimeout = 50 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	feedTrack(p, 239000779, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 3, 30*time.Second, t0)
	p.Drain(5 * time.Second)
	if p.proximityRoutes.size() == 0 && p.collisionRoutes.size() == 0 {
		t.Fatal("expected cached cell routes after fan-out")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.proximityRoutes.size() == 0 && p.collisionRoutes.size() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cell routes not invalidated by passivation: px=%d cx=%d",
		p.proximityRoutes.size(), p.collisionRoutes.size())
}

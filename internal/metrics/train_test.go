package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestTrainRecorderSnapshot(t *testing.T) {
	r := NewTrainRecorder()
	if s := r.Snapshot(); s != (TrainStats{}) {
		t.Fatalf("fresh recorder not zero: %+v", s)
	}
	r.Batch(1, 64, false)
	r.Batch(2, 64, true)
	r.Batch(3, 32, true)
	r.Epoch(0.25, 2*time.Second)
	r.Epoch(0.125, 2*time.Second)
	r.Run()
	r.Lane(0)
	r.Lane(1)
	s := r.Snapshot()
	if s.Runs != 1 || s.Epochs != 2 || s.Batches != 3 || s.Samples != 160 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.ClipEvents != 2 || s.Lanes != 2 {
		t.Fatalf("clip/lane counts wrong: %+v", s)
	}
	if s.LastLoss != 0.125 {
		t.Fatalf("last loss = %g, want latest epoch's 0.125", s.LastLoss)
	}
	if math.Abs(s.TrainSeconds-4) > 1e-9 {
		t.Fatalf("train seconds = %g, want 4", s.TrainSeconds)
	}
	if math.Abs(s.SamplesPerSec-40) > 1e-9 {
		t.Fatalf("samples/sec = %g, want 160/4", s.SamplesPerSec)
	}
}

// TestTrainRecorderConcurrent hammers the recorder from many
// goroutines; run with -race to verify the hot hooks share nothing.
func TestTrainRecorderConcurrent(t *testing.T) {
	r := NewTrainRecorder()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Batch(uint64(w*per+i), 10, i%5 == 0)
				r.Lane(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Batches != workers*per || s.Samples != workers*per*10 {
		t.Fatalf("lost increments: %+v", s)
	}
	if s.ClipEvents != workers*per/5 || s.Lanes != workers*per {
		t.Fatalf("clip/lane counts wrong: %+v", s)
	}
}

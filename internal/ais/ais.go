// Package ais models the Automatic Identification System data the
// whole platform ingests: position reports and static voyage data, plus
// an NMEA 0183 AIVDM encoder/decoder implementing the ITU-R M.1371
// bit layouts for message types 1/2/3 (class A position), 18 (class B
// position), 5 (class A static and voyage data) and 24 (class B static,
// parts A/B), including 6-bit payload armoring, checksums and
// multi-fragment assembly.
//
// The fleet simulator emits AIVDM sentences and the ingestion layer
// decodes them, so the pipeline exercises the same codec path a real
// deployment does against receiver hardware.
package ais

import (
	"fmt"
	"strconv"
	"time"
)

// MMSI is a Maritime Mobile Service Identity, the vessel key the
// pipeline partitions on (one vessel actor per MMSI).
type MMSI uint32

// Append appends the canonical 9-digit form to b — the alloc-free
// building block the writer hot path composes keys and set members
// from. Out-of-range identities (>9 digits) render unpadded, matching
// the %09d they previously went through.
func (m MMSI) Append(b []byte) []byte {
	v := uint32(m)
	if v >= 1_000_000_000 {
		return strconv.AppendUint(b, uint64(v), 10)
	}
	var d [9]byte
	for i := 8; i >= 0; i-- {
		d[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, d[:]...)
}

// String renders the canonical 9-digit form.
func (m MMSI) String() string { return string(m.Append(nil)) }

// Valid reports whether the identity fits in 30 bits and is non-zero.
func (m MMSI) Valid() bool { return m > 0 && m < 1<<30 }

// NavStatus is the navigational status field of a position report.
type NavStatus uint8

// Navigational statuses (ITU-R M.1371 table 45).
const (
	StatusUnderWayEngine NavStatus = 0
	StatusAtAnchor       NavStatus = 1
	StatusNotUnderCmd    NavStatus = 2
	StatusRestricted     NavStatus = 3
	StatusConstrained    NavStatus = 4
	StatusMoored         NavStatus = 5
	StatusAground        NavStatus = 6
	StatusFishing        NavStatus = 7
	StatusUnderWaySail   NavStatus = 8
	StatusNotDefined     NavStatus = 15
)

var navStatusNames = map[NavStatus]string{
	StatusUnderWayEngine: "under way using engine",
	StatusAtAnchor:       "at anchor",
	StatusNotUnderCmd:    "not under command",
	StatusRestricted:     "restricted manoeuvrability",
	StatusConstrained:    "constrained by draught",
	StatusMoored:         "moored",
	StatusAground:        "aground",
	StatusFishing:        "engaged in fishing",
	StatusUnderWaySail:   "under way sailing",
	StatusNotDefined:     "not defined",
}

func (s NavStatus) String() string {
	if n, ok := navStatusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// ShipType is the AIS ship-and-cargo type code.
type ShipType uint8

// Common ship type codes (ITU-R M.1371 table 53).
const (
	TypeUnknown   ShipType = 0
	TypeFishing   ShipType = 30
	TypeTug       ShipType = 52
	TypePilot     ShipType = 50
	TypePleasure  ShipType = 37
	TypeHSC       ShipType = 40
	TypePassenger ShipType = 60
	TypeCargo     ShipType = 70
	TypeTanker    ShipType = 80
)

// Class describes the transponder class; class B units report less and
// less often, which the simulator reproduces.
type Class uint8

// Transponder classes.
const (
	ClassA Class = iota
	ClassB
)

// PositionReport is a decoded dynamic position message (types 1/2/3 for
// class A, 18 for class B).
type PositionReport struct {
	MMSI      MMSI
	Class     Class
	Status    NavStatus
	Lat       float64 // degrees
	Lon       float64 // degrees
	SOG       float64 // speed over ground, knots; <0 means unavailable
	COG       float64 // course over ground, degrees; <0 means unavailable
	Heading   int     // true heading, degrees; -1 means unavailable
	ROT       float64 // rate of turn, degrees/min; NaN-free: ±128 sentinel handled by codec
	Timestamp time.Time
}

// StaticVoyage is a decoded type 5 static-and-voyage message.
type StaticVoyage struct {
	MMSI        MMSI
	IMO         uint32
	Callsign    string
	Name        string
	ShipType    ShipType
	DimBow      int // meters to bow from reference point
	DimStern    int
	DimPort     int
	DimStarb    int
	Draught     float64 // meters
	Destination string
}

// Length returns the overall vessel length in meters.
func (s StaticVoyage) Length() int { return s.DimBow + s.DimStern }

// Beam returns the overall vessel beam in meters.
func (s StaticVoyage) Beam() int { return s.DimPort + s.DimStarb }

// Message is any decoded AIS payload.
type Message interface {
	Source() MMSI
}

// Source implements Message.
func (p PositionReport) Source() MMSI { return p.MMSI }

// Source implements Message.
func (s StaticVoyage) Source() MMSI { return s.MMSI }

// Package broker implements an embedded, partitioned, append-only log
// broker in the spirit of the Kafka deployment the paper's ingestion
// layer consumes from: named topics split into partitions, producers
// that hash records by key onto partitions, and consumer groups with
// committed offsets giving at-least-once delivery.
//
// The broker is in-process: the pipeline's ingestion actors consume from
// it exactly as they would from a networked Kafka cluster, and the
// fleet simulator plays the role of the AIS receiver network producing
// into it. Offsets, lag accounting and group rebalancing behave like
// their Kafka counterparts so the ingestion code exercises the same
// control flow. Topics are in-memory by default; a broker opened with
// OpenDir additionally persists every record to per-partition segment
// files and checkpoints committed offsets, surviving restarts with
// at-least-once delivery (see persist.go).
package broker

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Record is one message stored in a partition log.
type Record struct {
	Topic     string
	Partition int
	Offset    int64
	Key       string
	Value     any
	Timestamp time.Time
}

// partition is a single append-only log with absolute offsets that
// survive head truncation (retention).
type partition struct {
	mu      sync.Mutex
	base    int64 // offset of records[0]
	records []Record
	// disk, when non-nil, receives every appended record (durable
	// brokers opened with OpenDir).
	disk *segmentWriter
}

func newPartition() *partition {
	return &partition{}
}

func (p *partition) append(r Record) (int64, error) {
	p.mu.Lock()
	r.Offset = p.base + int64(len(p.records))
	p.records = append(p.records, r)
	disk := p.disk
	p.mu.Unlock()
	if disk != nil {
		if err := disk.append(r); err != nil {
			return r.Offset, fmt.Errorf("broker: segment append: %w", err)
		}
	}
	return r.Offset, nil
}

// read returns up to max records starting at offset. Offsets below the
// retention head are snapped forward to the head (like Kafka's
// auto.offset.reset=earliest after truncation).
func (p *partition) read(offset int64, max int) []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < p.base {
		offset = p.base
	}
	idx := offset - p.base
	if idx >= int64(len(p.records)) {
		return nil
	}
	end := idx + int64(max)
	if end > int64(len(p.records)) {
		end = int64(len(p.records))
	}
	out := make([]Record, end-idx)
	copy(out, p.records[idx:end])
	return out
}

func (p *partition) end() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.records))
}

// truncate drops records so that at most keep remain.
func (p *partition) truncate(keep int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if excess := len(p.records) - keep; excess > 0 {
		p.base += int64(excess)
		p.records = append(p.records[:0:0], p.records[excess:]...)
	}
}

// head returns the retention head: the offset of the oldest retained
// record (== end when the partition is empty).
func (p *partition) head() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base
}

// topic is a set of partitions plus the consumer groups reading it.
type topic struct {
	name       string
	partitions []*partition
	broker     *Broker

	groupMu sync.Mutex
	groups  map[string]*group

	// wake is the close-and-replace broadcast channel blocking Polls
	// wait on: broadcast closes the current channel (waking every
	// waiter) and installs a fresh one for the next round.
	wakeMu sync.Mutex
	wake   chan struct{}
}

// wakeCh returns the channel the next broadcast will close. A waiter
// must capture it BEFORE checking for data: an append that lands
// between the check and the wait then closes the already-captured
// channel, so the wakeup cannot be lost.
func (t *topic) wakeCh() <-chan struct{} {
	t.wakeMu.Lock()
	defer t.wakeMu.Unlock()
	return t.wake
}

// broadcast wakes every Poll blocked on the topic (new data, or a
// membership change that may have handed a waiter new partitions).
func (t *topic) broadcast() {
	t.wakeMu.Lock()
	close(t.wake)
	t.wake = make(chan struct{})
	t.wakeMu.Unlock()
}

// group tracks committed offsets and membership for one consumer group
// on one topic.
type group struct {
	mu        sync.Mutex
	committed []int64     // per partition
	members   []*Consumer // sorted by id for deterministic assignment
	nextID    int
}

// Broker owns topics. All methods are safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
	// dir is the durable root when the broker was opened with OpenDir
	// ("" = in-memory only).
	dir string
}

// New creates an empty broker.
func New() *Broker {
	return &Broker{topics: make(map[string]*topic)}
}

// CreateTopic declares a topic with the given partition count. Creating
// an existing topic with the same partition count is a no-op.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("broker: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		if len(t.partitions) != partitions {
			return fmt.Errorf("broker: topic %q exists with %d partitions", name, len(t.partitions))
		}
		return nil
	}
	t := &topic{name: name, groups: make(map[string]*group), broker: b, wake: make(chan struct{})}
	for i := 0; i < partitions; i++ {
		t.partitions = append(t.partitions, newPartition())
	}
	if b.dir != "" {
		if err := b.attachSegments(t); err != nil {
			return err
		}
	}
	b.topics[name] = t
	return nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("broker: unknown topic %q", name)
	}
	return t, nil
}

// Partitions returns the partition count of a topic, or 0 when unknown.
func (b *Broker) Partitions(name string) int {
	t, err := b.topic(name)
	if err != nil {
		return 0
	}
	return len(t.partitions)
}

// Produce appends a record keyed by key; records with the same key land
// on the same partition, preserving per-key order (per-vessel order for
// MMSI-keyed AIS streams).
func (b *Broker) Produce(topicName, key string, value any) (partitionIdx int, offset int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	partitionIdx = partitionFor(key, len(t.partitions))
	offset, err = t.partitions[partitionIdx].append(Record{
		Topic:     topicName,
		Partition: partitionIdx,
		Key:       key,
		Value:     value,
		Timestamp: time.Now(),
	})
	// Even a failed segment write leaves the record readable in memory,
	// so waiters are woken unconditionally.
	t.broadcast()
	return partitionIdx, offset, err
}

func partitionFor(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// EndOffsets returns the current end offset of every partition.
func (b *Broker) EndOffsets(topicName string) ([]int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(t.partitions))
	for i, p := range t.partitions {
		out[i] = p.end()
	}
	return out, nil
}

// Truncate enforces a per-partition retention of keep records.
//
// Committed offsets that the truncation leaves behind the new retention
// heads are snapped forward to them, mirroring what reads already do
// (auto.offset.reset=earliest): without the snap, a group that was
// lagging past the dropped records would report the unreadable gap as
// lag forever. A consumer that polled records before the truncation and
// commits afterwards still wins — its position is past the new head, so
// the usual only-advance commit rule applies.
func (b *Broker) Truncate(topicName string, keep int) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	heads := make([]int64, len(t.partitions))
	for i, p := range t.partitions {
		p.truncate(keep)
		heads[i] = p.head()
	}
	t.groupMu.Lock()
	groups := make([]*group, 0, len(t.groups))
	for _, g := range t.groups {
		groups = append(groups, g)
	}
	t.groupMu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		for pi, head := range heads {
			if g.committed[pi] < head {
				g.committed[pi] = head
			}
		}
		g.mu.Unlock()
	}
	return nil
}

// Lag returns, per partition, how far the group's committed offsets
// trail the log ends.
func (b *Broker) Lag(topicName, groupName string) ([]int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	g := t.ensureGroup(groupName)
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, len(t.partitions))
	for i, p := range t.partitions {
		// Clamp: a commit racing a concurrent truncate-and-append cycle
		// can transiently observe committed > end; lag is never negative.
		if d := p.end() - g.committed[i]; d > 0 {
			out[i] = d
		}
	}
	return out, nil
}

// GroupLag is one consumer group's total lag on one topic, summed over
// partitions.
type GroupLag struct {
	Topic string
	Group string
	Lag   int64
}

// GroupLags snapshots the lag of every consumer group on every topic,
// sorted by topic then group — the feed for the seatwin_broker_lag
// gauge. Only groups that have subscribed or committed appear.
func (b *Broker) GroupLags() []GroupLag {
	b.mu.RLock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()

	var out []GroupLag
	for _, t := range topics {
		t.groupMu.Lock()
		names := make([]string, 0, len(t.groups))
		for name := range t.groups {
			names = append(names, name)
		}
		groups := make([]*group, 0, len(names))
		sort.Strings(names)
		for _, name := range names {
			groups = append(groups, t.groups[name])
		}
		t.groupMu.Unlock()
		for i, g := range groups {
			g.mu.Lock()
			var total int64
			for pi, p := range t.partitions {
				// Same clamp as Lag: transient committed-past-end reads
				// must not produce a negative gauge.
				if d := p.end() - g.committed[pi]; d > 0 {
					total += d
				}
			}
			g.mu.Unlock()
			out = append(out, GroupLag{Topic: t.name, Group: names[i], Lag: total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topic != out[j].Topic {
			return out[i].Topic < out[j].Topic
		}
		return out[i].Group < out[j].Group
	})
	return out
}

func (t *topic) ensureGroup(name string) *group {
	t.groupMu.Lock()
	defer t.groupMu.Unlock()
	g, ok := t.groups[name]
	if !ok {
		g = &group{committed: make([]int64, len(t.partitions))}
		t.groups[name] = g
	}
	return g
}

// Consumer reads one topic as a member of a consumer group. A consumer
// is not safe for concurrent use by multiple goroutines (same as a
// Kafka consumer); spawn one per goroutine.
type Consumer struct {
	id        int
	topic     *topic
	group     *group
	groupName string

	assigned  []int
	positions map[int]int64 // in-flight read positions per partition
	closed    bool
	closeCh   chan struct{} // closed by Close, unblocking a waiting Poll
	mu        sync.Mutex
}

// Subscribe joins the consumer group on the topic, triggering a
// rebalance that spreads partitions round-robin over members.
func (b *Broker) Subscribe(topicName, groupName string) (*Consumer, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	g := t.ensureGroup(groupName)
	g.mu.Lock()
	defer g.mu.Unlock()
	c := &Consumer{
		id:        g.nextID,
		topic:     t,
		group:     g,
		groupName: groupName,
		positions: make(map[int]int64),
		closeCh:   make(chan struct{}),
	}
	g.nextID++
	g.members = append(g.members, c)
	g.rebalanceLocked(len(t.partitions))
	// Wake blocked members: the rebalance may have handed them
	// partitions that already hold data.
	t.broadcast()
	return c, nil
}

// rebalanceLocked reassigns partitions round-robin across members.
// Callers hold g.mu; member state is mutated under each member's own
// mutex (lock order: group then member, and no other path holds both).
func (g *group) rebalanceLocked(numPartitions int) {
	sort.Slice(g.members, func(i, j int) bool { return g.members[i].id < g.members[j].id })
	assignments := make([][]int, len(g.members))
	for p := 0; p < numPartitions && len(g.members) > 0; p++ {
		i := p % len(g.members)
		assignments[i] = append(assignments[i], p)
	}
	for i, m := range g.members {
		m.mu.Lock()
		m.assigned = assignments[i]
		// Drop in-flight positions: after a rebalance every member
		// resumes from the committed offsets (at-least-once redelivery).
		m.positions = make(map[int]int64)
		m.mu.Unlock()
	}
}

// Assignment returns the partitions currently assigned to the consumer.
func (c *Consumer) Assignment() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.assigned))
	copy(out, c.assigned)
	return out
}

// Poll returns up to max records from the consumer's assigned
// partitions, waiting up to wait for data. It advances the in-flight
// position but not the committed offset; call Commit after processing.
//
// An empty poll blocks on the topic's broadcast channel — no sleeping
// or spinning — and wakes on the next Produce, on a group membership
// change, or when Close unblocks it. The wake channel is captured
// before the data check, so an append racing the wait is never missed.
func (c *Consumer) Poll(max int, wait time.Duration) []Record {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		wake := c.topic.wakeCh()
		if recs := c.pollOnce(max); len(recs) > 0 {
			return recs
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil
		}
		select {
		case <-wake:
		case <-timer.C:
			return nil
		case <-c.closeCh:
			return nil
		}
	}
}

func (c *Consumer) pollOnce(max int) []Record {
	c.mu.Lock()
	assigned := append([]int(nil), c.assigned...)
	c.mu.Unlock()

	var out []Record
	for _, pi := range assigned {
		if len(out) >= max {
			break
		}
		c.mu.Lock()
		pos, ok := c.positions[pi]
		c.mu.Unlock()
		if !ok {
			c.group.mu.Lock()
			pos = c.group.committed[pi]
			c.group.mu.Unlock()
		}

		recs := c.topic.partitions[pi].read(pos, max-len(out))
		if len(recs) == 0 {
			continue
		}
		out = append(out, recs...)
		c.mu.Lock()
		c.positions[pi] = recs[len(recs)-1].Offset + 1
		c.mu.Unlock()
	}
	return out
}

// Commit marks everything returned by prior Polls as processed,
// advancing the group's committed offsets. The consumer and group
// mutexes are never held together here (the rebalance path owns that
// nesting), so the lock order stays acyclic.
func (c *Consumer) Commit() {
	c.mu.Lock()
	snapshot := make(map[int]int64, len(c.positions))
	for pi, pos := range c.positions {
		snapshot[pi] = pos
	}
	c.mu.Unlock()
	c.group.mu.Lock()
	for pi, pos := range snapshot {
		if pos > c.group.committed[pi] {
			c.group.committed[pi] = pos
		}
	}
	c.group.mu.Unlock()
	if c.topic.broker != nil && c.topic.broker.dir != "" {
		// Checkpoint offsets durably; best effort (at-least-once).
		c.topic.broker.saveGroups()
	}
}

// Close leaves the group, triggering a rebalance. A Poll blocked on
// the topic is unblocked immediately.
func (c *Consumer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.closeCh)
	c.mu.Unlock()
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	for i, m := range c.group.members {
		if m == c {
			c.group.members = append(c.group.members[:i], c.group.members[i+1:]...)
			break
		}
	}
	c.group.rebalanceLocked(len(c.topic.partitions))
	// Remaining members may have inherited this consumer's partitions;
	// wake them so they re-poll under the new assignment.
	c.topic.broadcast()
}

package svrf

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/geo"
	"seatwin/internal/traj"
)

// trainWindows builds a small but trainable window set.
func trainWindows(t testing.TB, n int) []traj.Window {
	t.Helper()
	var ws []traj.Window
	for i := 0; len(ws) < n; i++ {
		track := straightTrack(geo.Point{Lat: 36 + float64(i)*0.3, Lon: 23 + float64(i)*0.2},
			float64((i*47)%360), 8+float64(i%9), 30*time.Second, 3*time.Hour)
		ws = append(ws, traj.BuildWindows(track, traj.DefaultConfig())...)
	}
	return ws[:n]
}

// referenceForecast is the interpreted-oracle forecast for a window.
func referenceForecast(m *Model, w traj.Window) []geo.Point {
	return traj.PredictedPositions(w.LastPos, m.net.Predict(w.Input))
}

func assertForecastMatchesReference(t *testing.T, m *Model, w traj.Window, context string) {
	t.Helper()
	got := m.Forecast(w)
	want := referenceForecast(m, w)
	for h := range want {
		if math.Abs(got[h].Lat-want[h].Lat) > 1e-9 || math.Abs(got[h].Lon-want[h].Lon) > 1e-9 {
			t.Fatalf("%s: horizon %d: compiled %v vs reference %v — stale snapshot pinned",
				context, h, got[h], want[h])
		}
	}
}

// The regression test for the Train/compiledNet race: forecasts running
// concurrently with Train must neither trip the race detector (the old
// nil-CAS path compiled from weights mid-update) nor pin a stale
// snapshot past Train's invalidation (the old path could CAS a
// pre-training compile in *after* Train stored nil). After every Train
// the next forecast must agree with the reference Predict on the new
// weights.
func TestTrainConcurrentForecastNoStaleSnapshot(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws := trainWindows(t, 96)
	w := forecastWindow(t)

	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]geo.Point, 0, m.cfg.Horizons)
			for !stop.Load() {
				dst = m.ForecastInto(dst, w)
				if len(dst) != m.cfg.Horizons {
					panic("short forecast")
				}
			}
		}()
	}
	opt := DefaultTrainOptions()
	opt.Epochs = 1
	for r := 0; r < rounds; r++ {
		gen := m.Generation()
		m.Train(ws, opt)
		if got := m.Generation(); got != gen+1 {
			t.Fatalf("round %d: generation %d after Train, want %d", r, got, gen+1)
		}
		assertForecastMatchesReference(t, m, w, "after Train")
	}
	stop.Store(true)
	wg.Wait()
}

func TestCloneSharesNoWeights(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	w := forecastWindow(t)
	before := m.Forecast(w)
	got := c.Forecast(w)
	for h := range before {
		if before[h] != got[h] {
			t.Fatalf("horizon %d: clone forecast %v != original %v", h, got[h], before[h])
		}
	}
	// Training the clone must not move the original.
	opt := DefaultTrainOptions()
	opt.Epochs = 1
	c.Train(trainWindows(t, 96), opt)
	after := m.Forecast(w)
	for h := range before {
		if before[h] != after[h] {
			t.Fatalf("horizon %d: original moved after clone training: %v -> %v", h, before[h], after[h])
		}
	}
	if m.Generation() != 0 {
		t.Fatalf("original generation %d after clone training, want 0", m.Generation())
	}
}

// SwapWeightsFrom under concurrent forecast load: no forecast may block
// or observe torn weights, the swap must land atomically, and after the
// swap the live model must forecast exactly like the candidate.
func TestSwapWeightsUnderForecastLoad(t *testing.T) {
	live, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 99 // different init: swapping must visibly change outputs
	candidate, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.Epochs = 1
	candidate.Train(trainWindows(t, 96), opt)

	w := forecastWindow(t)
	var forecasts atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]geo.Point, 0, live.cfg.Horizons)
			for !stop.Load() {
				dst = live.ForecastInto(dst, w)
				if len(dst) != live.cfg.Horizons {
					panic("short forecast")
				}
				forecasts.Add(1)
			}
		}()
	}
	// Let the load warm up, then swap mid-flight.
	for forecasts.Load() < 100 {
		runtime.Gosched()
	}
	if err := live.SwapWeightsFrom(candidate); err != nil {
		t.Fatal(err)
	}
	// The swap must not have wedged the serving path.
	during := forecasts.Load()
	for forecasts.Load() < during+100 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if live.Generation() != 1 {
		t.Fatalf("generation %d after swap, want 1", live.Generation())
	}
	got := live.Forecast(w)
	want := candidate.Forecast(w)
	for h := range want {
		if got[h] != want[h] {
			t.Fatalf("horizon %d: post-swap forecast %v != candidate %v", h, got[h], want[h])
		}
	}
	assertForecastMatchesReference(t, live, w, "after swap")
}

func TestSwapWeightsRejectsGeometryMismatch(t *testing.T) {
	live, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Hidden = 16
	other, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.SwapWeightsFrom(other); err == nil {
		t.Fatal("swap across geometries must fail")
	}
	if err := live.SwapWeightsFrom(live); err == nil {
		t.Fatal("self-swap must fail")
	}
	if live.Generation() != 0 {
		t.Fatalf("failed swaps must not bump the generation (got %d)", live.Generation())
	}
}

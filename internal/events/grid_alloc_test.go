package events

import (
	"math/rand"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// The grid detectors must run allocation-free in steady state: slots,
// bins, rings, sample arenas and the returned event slice are all
// recycled. Both tests drive the detectors long enough for every arena
// to reach its working capacity, then assert zero allocations per
// update — including eviction/reinsert churn and event emission.

func TestGridProximityUpdateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation bounds do not hold under the race detector")
	}
	g := NewGridProximityDetector(DefaultProximityConfig())
	const n = 200
	pts := make([]geo.Point, n)
	for i := range pts {
		// ~660 m spacing; vessels 0 and 1 moved within threshold so the
		// emission+cooldown path is exercised (one event, then
		// suppressed).
		pts[i] = geo.Point{Lat: 1.2, Lon: 103.5 + float64(i)*0.006}
	}
	pts[1] = geo.Point{Lat: 1.2, Lon: pts[0].Lon + 0.003}
	// 1 s per update: a full rotation takes 200 s, so entries churn
	// through the staleness ring (evict + reinsert) at steady state.
	at := t0
	for r := 0; r < 4; r++ {
		for i := range pts {
			at = at.Add(time.Second)
			g.Update(ais.MMSI(400000000+i), pts[i], at)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		at = at.Add(time.Second)
		g.Update(ais.MMSI(400000000+i%n), pts[i%n], at)
		i++
	})
	if allocs != 0 {
		t.Fatalf("GridProximityDetector.Update allocates %v/op in steady state, want 0", allocs)
	}
}

func TestGridCollisionUpdateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation bounds do not hold under the race detector")
	}
	// Short expiry so the eviction ring drains at the pace slots churn;
	// with 60 vessels on a 1 s cadence each slot expires (and its ring
	// record pops) before the vessel's next report.
	d := NewGridDetector(DefaultCollisionConfig(), 30*time.Second)
	const n = 60
	rng := rand.New(rand.NewSource(5))
	center := geo.Point{Lat: 1.2, Lon: 103.8}
	fcs := make([]Forecast, n)
	for i := range fcs {
		pos := geo.Destination(center, rng.Float64()*360, rng.Float64()*3000)
		cog := rng.Float64() * 360
		fcs[i] = Forecast{MMSI: ais.MMSI(500000000 + i), Points: []ForecastPoint{
			{Pos: pos, At: t0},
			{Pos: geo.DeadReckon(pos, 12, cog, 120), At: t0.Add(2 * time.Minute)},
			{Pos: geo.DeadReckon(pos, 12, cog, 240), At: t0.Add(4 * time.Minute)},
		}}
	}
	now := t0
	for r := 0; r < 4; r++ {
		for i := range fcs {
			now = now.Add(time.Second)
			d.Update(fcs[i], now)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		now = now.Add(time.Second)
		d.Update(fcs[i%n], now)
		i++
	})
	if allocs != 0 {
		t.Fatalf("GridDetector.Update allocates %v/op in steady state, want 0", allocs)
	}
}

// Quickstart: the smallest end-to-end use of the public pipeline — feed
// AIS position reports for a handful of vessels, let the vessel actors
// forecast their routes, and read the resulting state back from the
// middleware store.
package main

import (
	"fmt"
	"log"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/pipeline"
)

func main() {
	// 1. Build the pipeline. The forecaster is shared by every vessel
	// actor; here the linear kinematic baseline keeps the example
	// instant — swap in a trained S-VRF model via svrf.LoadFile +
	// events.SVRFForecaster{Model: m} for learned forecasts.
	p, err := pipeline.New(pipeline.DefaultConfig(events.NewKinematicForecaster()))
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	// 2. Stream a few vessels sailing out of Piraeus. Each report is
	// routed to that vessel's actor, which forecasts 30 minutes ahead.
	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	fleet := []struct {
		mmsi ais.MMSI
		name string
		cog  float64
		sog  float64
	}{
		{237000001, "BLUE STAR DELOS", 140, 18},
		{237000002, "AEGEAN TRADER 7", 95, 12},
		{237000003, "NORDIC WAVE 3", 200, 9},
	}
	origin := geo.Point{Lat: 37.90, Lon: 23.65}
	for _, v := range fleet {
		p.Ingest(ais.StaticVoyage{MMSI: v.mmsi, Name: v.name, ShipType: ais.TypeCargo}, start)
		for i := 0; i < 5; i++ {
			at := start.Add(time.Duration(i) * 30 * time.Second)
			pos := geo.DeadReckon(origin, v.sog, v.cog, at.Sub(start).Seconds())
			p.Ingest(ais.PositionReport{
				MMSI: v.mmsi, Lat: pos.Lat, Lon: pos.Lon,
				SOG: v.sog, COG: v.cog, Status: ais.StatusUnderWayEngine,
				Timestamp: at,
			}, at)
		}
	}
	p.Drain(5 * time.Second)

	// 3. Read the digital-twin state back from the store — the same
	// data the HTTP API serves to the UI.
	for _, v := range fleet {
		h, err := p.Store().HGetAll("vessel:" + v.mmsi.String())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s)\n", h["name"], v.mmsi)
		fmt.Printf("  position (%s, %s)  %s kn on %s°  [%s]\n",
			h["lat"], h["lon"], h["sog"], h["cog"], h["status"])
		fmt.Printf("  30-minute forecast: %s\n\n", h["forecast"])
	}

	s := p.Stats()
	fmt.Printf("pipeline: %d messages, %d forecasts, %d live actors, mean processing %v\n",
		s.Messages, s.Forecasts, s.LiveActors, s.Latency.Mean.Round(time.Microsecond))
}

package weather

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func TestDeterministicForSeed(t *testing.T) {
	a := NewField(7)
	b := NewField(7)
	p := geo.Point{Lat: 45, Lon: -20}
	if a.At(p, t0) != b.At(p, t0) {
		t.Fatal("same seed diverged")
	}
	c := NewField(8)
	if a.At(p, t0) == c.At(p, t0) {
		t.Fatal("different seeds identical")
	}
}

func TestBoundsPlausible(t *testing.T) {
	f := NewField(3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := geo.Point{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
		at := t0.Add(time.Duration(rng.Intn(720)) * time.Hour)
		c := f.At(p, at)
		if c.WindKnots < 0 || c.WindKnots > 90 {
			t.Fatalf("wind %f kn", c.WindKnots)
		}
		if c.WindDirDeg < 0 || c.WindDirDeg >= 360 {
			t.Fatalf("direction %f", c.WindDirDeg)
		}
		if c.WaveHeightM < 0 || c.WaveHeightM > 15 {
			t.Fatalf("waves %f m", c.WaveHeightM)
		}
	}
}

func TestSpatialCoherence(t *testing.T) {
	// Points 10 km apart must have similar conditions; points 2000 km
	// apart should usually differ more.
	f := NewField(5)
	rng := rand.New(rand.NewSource(2))
	var nearDiff, farDiff float64
	const samples = 300
	for i := 0; i < samples; i++ {
		p := geo.Point{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*340 - 170}
		near := geo.Destination(p, rng.Float64()*360, 10000)
		far := geo.Destination(p, rng.Float64()*360, 2000000)
		c0 := f.At(p, t0)
		nearDiff += math.Abs(f.At(near, t0).WindKnots - c0.WindKnots)
		farDiff += math.Abs(f.At(far, t0).WindKnots - c0.WindKnots)
	}
	if nearDiff >= farDiff*0.5 {
		t.Fatalf("field not coherent: near mean diff %.2f vs far %.2f",
			nearDiff/samples, farDiff/samples)
	}
}

func TestTemporalCoherence(t *testing.T) {
	f := NewField(6)
	p := geo.Point{Lat: 50, Lon: -30}
	c0 := f.At(p, t0)
	soon := f.At(p, t0.Add(10*time.Minute))
	later := f.At(p, t0.Add(72*time.Hour))
	if d := math.Abs(soon.WindKnots - c0.WindKnots); d > 3 {
		t.Fatalf("wind jumped %.1f kn in 10 minutes", d)
	}
	_ = later // three days later anything goes; just must not panic
}

func TestVariabilityExists(t *testing.T) {
	// The field must actually produce storms somewhere.
	f := NewField(11)
	rng := rand.New(rand.NewSource(3))
	maxWind := 0.0
	for i := 0; i < 5000; i++ {
		p := geo.Point{Lat: rng.Float64()*140 - 70, Lon: rng.Float64()*360 - 180}
		at := t0.Add(time.Duration(rng.Intn(2000)) * time.Hour)
		if c := f.At(p, at); c.WindKnots > maxWind {
			maxWind = c.WindKnots
		}
	}
	if maxWind < 34 {
		t.Fatalf("no gale anywhere: max wind %.1f kn", maxWind)
	}
}

func TestEnrichCells(t *testing.T) {
	f := NewField(4)
	cells := hexgrid.Cover(geo.AegeanSea, 5)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	enriched := f.EnrichCells(cells, t0)
	if len(enriched) != len(cells) {
		t.Fatalf("enriched %d of %d cells", len(enriched), len(cells))
	}
	for cell, c := range enriched {
		want := f.At(cell.Center(), t0)
		if c != want {
			t.Fatal("enrichment does not match direct sampling")
		}
	}
	if got := f.EnrichCells([]hexgrid.Cell{hexgrid.InvalidCell}, t0); len(got) != 0 {
		t.Fatal("invalid cells must be skipped")
	}
}

func TestSpeedFactor(t *testing.T) {
	storm := Conditions{WindKnots: 40, WindDirDeg: 0, WaveHeightM: 5}
	calm := Conditions{WindKnots: 5, WindDirDeg: 0, WaveHeightM: 0.3}
	if SpeedFactor(calm, 123) != 1 {
		t.Fatal("calm seas must not slow the vessel")
	}
	// Wind FROM north: waves travel south; a northbound vessel (course
	// 0) faces head seas, a southbound one following seas.
	headSea := SpeedFactor(storm, 0)
	followingSea := SpeedFactor(storm, 180)
	if headSea >= followingSea {
		t.Fatalf("head seas (%f) must slow more than following seas (%f)", headSea, followingSea)
	}
	if headSea < 0.5 || headSea >= 1 {
		t.Fatalf("head-sea factor %f implausible", headSea)
	}
	if !storm.Severe() || calm.Severe() {
		t.Fatal("severity classification wrong")
	}
}

func BenchmarkFieldAt(b *testing.B) {
	f := NewField(1)
	p := geo.Point{Lat: 37.5, Lon: 24.5}
	for i := 0; i < b.N; i++ {
		f.At(p, t0)
	}
}

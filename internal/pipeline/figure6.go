package pipeline

import (
	"sync/atomic"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
)

// ScalabilityConfig shapes the Figure 6 experiment: a growing global
// fleet streamed through the full pipeline while the per-message
// processing time is recorded against the live actor count.
type ScalabilityConfig struct {
	// Vessels is the fleet size (the paper reaches 170K live vessels).
	Vessels int
	// Messages bounds the experiment volume.
	Messages int
	// Seed drives the simulated world.
	Seed int64
	// Consumers is the number of broker consumers feeding the pipeline
	// (the paper consumes several Kafka partitions concurrently).
	Consumers int
	// Partitions of the ingestion topic.
	Partitions int
	// RatePerSec, when positive, paces production to that many messages
	// per second. The paper's evaluation consumed a LIVE stream — the
	// system had headroom — so a paced run reproduces its conditions;
	// an unpaced run is a saturation stress test instead.
	RatePerSec float64
}

// DefaultScalabilityConfig runs a laptop-scale version of the
// experiment.
func DefaultScalabilityConfig() ScalabilityConfig {
	return ScalabilityConfig{
		Vessels:    20000,
		Messages:   400000,
		Seed:       1,
		Consumers:  4,
		Partitions: 8,
	}
}

// ScalabilityResult is the Figure 6 outcome.
type ScalabilityResult struct {
	Series   []Sample
	Stats    Stats
	Duration time.Duration
	Ingested int
}

// RunScalability streams cfg.Messages AIS reports from a simulated
// global fleet through the pipeline via the embedded broker and
// returns the processing-time-vs-actor-count series.
func RunScalability(p *Pipeline, cfg ScalabilityConfig) (ScalabilityResult, error) {
	if cfg.Vessels <= 0 {
		cfg = DefaultScalabilityConfig()
	}
	start := time.Now()
	br := broker.New()
	const topic = "ais-global"
	if err := br.CreateTopic(topic, cfg.Partitions); err != nil {
		return ScalabilityResult{}, err
	}

	// Consumers drain the topic into the pipeline concurrently. They
	// stop when production has finished AND the group lag is zero —
	// a quiet poll alone is not an end-of-stream signal on a saturated
	// machine.
	var producingDone int32
	done := make(chan int, cfg.Consumers)
	consume := func(c *broker.Consumer) {
		n := 0
		for {
			recs := c.Poll(512, 250*time.Millisecond)
			for _, r := range recs {
				if msg, ok := r.Value.(ais.Message); ok {
					p.Ingest(msg, r.Timestamp)
					n++
				}
			}
			c.Commit()
			if len(recs) == 0 && atomic.LoadInt32(&producingDone) == 1 {
				lag, err := br.Lag(topic, "pipeline")
				if err != nil {
					break
				}
				total := int64(0)
				for _, l := range lag {
					total += l
				}
				if total == 0 {
					break
				}
			}
		}
		done <- n
		c.Close()
	}
	for i := 0; i < cfg.Consumers; i++ {
		c, err := br.Subscribe(topic, "pipeline")
		if err != nil {
			return ScalabilityResult{}, err
		}
		go consume(c)
	}

	// The producer side: the simulated world plays the role of the AIS
	// receiver network, keyed by MMSI so per-vessel order is kept.
	world := fleetsim.NewWorld(fleetsim.Config{
		Vessels:     cfg.Vessels,
		Seed:        cfg.Seed,
		Region:      geo.BBox{}, // global
		KeepSailing: true,
	})
	produced := 0
	paceStart := time.Now()
	for produced < cfg.Messages {
		r, ok := world.Next()
		if !ok {
			break
		}
		if _, _, err := br.Produce(topic, r.Pos.MMSI.String(), r.Pos); err != nil {
			return ScalabilityResult{}, err
		}
		produced++
		if cfg.RatePerSec > 0 {
			ahead := time.Duration(float64(produced)/cfg.RatePerSec*float64(time.Second)) - time.Since(paceStart)
			if ahead > 10*time.Millisecond {
				time.Sleep(ahead)
			}
		}
	}
	atomic.StoreInt32(&producingDone, 1)

	// Wait for the consumers to drain (they stop after pollWait of
	// silence).
	ingested := 0
	for i := 0; i < cfg.Consumers; i++ {
		ingested += <-done
	}
	p.Drain(10 * time.Second)

	return ScalabilityResult{
		Series:   p.Series(),
		Stats:    p.Stats(),
		Duration: time.Since(start),
		Ingested: ingested,
	}, nil
}

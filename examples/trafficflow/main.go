// Trafficflow: the Figure 4d view — forecast the vessel traffic flow
// of the central Aegean with the indirect strategy (per-vessel route
// forecasts rasterised onto the hexagonal grid) and render the
// predicted 30-minute-ahead heat map as ASCII, with the direct
// sequence baseline shown for comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/vtff"
)

func main() {
	cfg := vtff.DefaultConfig()

	// Record two hours of simulated Aegean traffic.
	ds := fleetsim.Record(geo.AegeanSea, 250, 2*time.Hour, 7)
	log.Printf("recorded %d messages from %d vessels", ds.Messages(), len(ds.Tracks))

	// Cut: history before, truth after.
	cut := ds.Start.Add(ds.Duration - 35*time.Minute)
	lastWindow := cfg.WindowIndex(cut)

	// Forecast every vessel from its history at the cut.
	fc := events.NewKinematicForecaster()
	histAcc := vtff.NewAccumulator(cfg)
	actAcc := vtff.NewAccumulator(cfg)
	var forecasts []events.Forecast
	for _, tr := range ds.Tracks {
		var hist []ais.PositionReport
		for _, r := range tr.Reports {
			pt := geo.Point{Lat: r.Lat, Lon: r.Lon}
			if r.Timestamp.Before(cut) {
				histAcc.Add(r.MMSI, pt, r.Timestamp)
				hist = append(hist, r)
			} else {
				actAcc.Add(r.MMSI, pt, r.Timestamp)
			}
		}
		if f, ok := fc.ForecastTrack(hist); ok {
			forecasts = append(forecasts, f)
		}
	}

	indirect := vtff.Indirect(forecasts, cfg)
	history := map[int64]vtff.Flow{}
	for _, w := range histAcc.Windows() {
		history[w] = histAcc.Window(w)
	}
	direct := vtff.Direct(history, lastWindow, 6, vtff.DirectMovingAverage)

	// Render the best-populated future window (forecast anchors trail
	// the cut by up to a sampling interval, so the outermost window is
	// only partially covered).
	target := lastWindow + 1
	for w := lastWindow + 2; w <= lastWindow+6; w++ {
		if indirect[w].Total() > indirect[target].Total() {
			target = w
		}
	}
	actual := actAcc.Window(target)
	ahead := time.Duration(target-lastWindow) * cfg.WindowStep
	fmt.Printf("\npredicted traffic flow %s (+%s), indirect strategy: %d vessels in %d cells\n",
		cfg.WindowStart(target).Format("15:04"), ahead,
		indirect[target].Total(), len(indirect[target].ActiveCells()))
	render(indirect[target], cfg)
	fmt.Printf("\nindirect MAE %.3f vs direct MAE %.3f (vessels/cell)\n",
		vtff.MAE(indirect[target], actual), vtff.MAE(direct[target], actual))
}

// render draws the Aegean box as an ASCII grid: '.' empty, 'o' low,
// 'O' medium, '#' high — the textual counterpart of Figure 4d's
// green/red cells.
func render(flow vtff.Flow, cfg vtff.Config) {
	box := geo.AegeanSea
	const rows, cols = 18, 40
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			lat := box.MaxLat - (box.MaxLat-box.MinLat)*float64(r)/float64(rows-1)
			lon := box.MinLon + (box.MaxLon-box.MinLon)*float64(c)/float64(cols-1)
			cell := hexgrid.LatLonToCell(geo.Point{Lat: lat, Lon: lon}, cfg.Resolution)
			switch vtff.HeatLevel(flow[cell]) {
			case "low":
				line[c] = 'o'
			case "medium":
				line[c] = 'O'
			case "high":
				line[c] = '#'
			default:
				line[c] = '.'
			}
		}
		fmt.Println(string(line))
	}
}

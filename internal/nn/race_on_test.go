//go:build race

package nn

// Allocation counts are not stable under the race detector (it
// instruments allocations and randomises sync.Pool behaviour), so the
// alloc-bound tests skip themselves when it is on.
const raceEnabled = true

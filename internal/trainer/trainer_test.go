package trainer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/broker"
	"seatwin/internal/experiments"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/svrf"
	"seatwin/internal/traj"
)

// recordFleet captures a deterministic regional dataset once per test
// binary (the expensive part of every lifecycle test).
var recordFleet = sync.OnceValue(func() *fleetsim.RecordedDataset {
	return fleetsim.Record(geo.AegeanSea, 16, 2*time.Hour, 5)
})

// produceDataset replays a recorded dataset into the broker, keyed by
// MMSI like the live simulator, and returns the record count.
func produceDataset(t testing.TB, b *broker.Broker, topic string, ds *fleetsim.RecordedDataset) int {
	t.Helper()
	n := 0
	for _, tr := range ds.Tracks {
		for _, r := range tr.Reports {
			if _, _, err := b.Produce(topic, r.MMSI.String(), r); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	return n
}

// fastConfig returns trainer settings sized for a test dataset.
func fastConfig(b *broker.Broker, live *svrf.Model, t *testing.T) Config {
	return Config{
		Broker:          b,
		Topic:           "ais",
		Live:            live,
		HoldoutFrac:     0.3,
		MinTrainWindows: 64,
		TrainOptions:    svrf.TrainOptions{Epochs: 2, BatchSize: 64, LR: 2e-3, Seed: 1},
		Promotion:       experiments.PromotionConfig{MaxADERatio: 1.0, MinHoldout: 24},
		Logf:            t.Logf,
	}
}

// evalWindow cuts one forecastable window from the dataset.
func evalWindow(t testing.TB, ds *fleetsim.RecordedDataset) traj.Window {
	t.Helper()
	for _, tr := range ds.Tracks {
		if ws := traj.BuildWindows(tr.Reports, traj.DefaultConfig()); len(ws) > 0 {
			return ws[0]
		}
	}
	t.Fatal("no forecastable window in dataset")
	return traj.Window{}
}

// The e2e lifecycle path (run it with -race): the trainer replays
// broker-retained history through its own committed-offset group,
// trains a candidate, wins the shadow eval against the untrained live
// model, and hot-swaps — while concurrent forecast load on the live
// model never blocks, drops or shortens a forecast.
func TestLifecycleEndToEnd(t *testing.T) {
	ds := recordFleet()
	b := broker.New()
	if err := b.CreateTopic("ais", 8); err != nil {
		t.Fatal(err)
	}
	produced := produceDataset(t, b, "ais", ds)
	// Enforce retention before the trainer ever reads: the replay must
	// work from the retained tail alone (and the committed-offset snap
	// keeps lag finite — see broker.Truncate).
	if err := b.Truncate("ais", 2048); err != nil {
		t.Fatal(err)
	}

	live, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(fastConfig(b, live, t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()

	// Concurrent forecast load across the whole cycle, including the
	// hot-swap: every forecast must complete at full length.
	w := evalWindow(t, ds)
	var forecasts atomic.Int64
	var bad atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]geo.Point, 0, 6)
			for !stop.Load() {
				dst = live.ForecastInto(dst, w)
				if len(dst) != 6 {
					bad.Add(1)
				}
				forecasts.Add(1)
			}
		}()
	}

	res := tr.RunCycle()
	stop.Store(true)
	wg.Wait()

	if res.Skipped {
		t.Fatalf("cycle skipped: %s", res.SkipReason)
	}
	if res.Replayed == 0 || res.Replayed > produced {
		t.Fatalf("replayed %d records (produced %d)", res.Replayed, produced)
	}
	if res.TrainWindows < 64 || res.Holdout < 24 {
		t.Fatalf("split too small: train=%d holdout=%d", res.TrainWindows, res.Holdout)
	}
	if !res.Promotion.Promote || !res.Promoted {
		t.Fatalf("trained candidate must beat the untrained live model: %+v", res.Promotion)
	}
	if res.Promotion.CandidateADE >= res.Promotion.LiveADE {
		t.Fatalf("candidate ADE %.1f not better than live %.1f",
			res.Promotion.CandidateADE, res.Promotion.LiveADE)
	}
	if gen := live.Generation(); gen != 1 {
		t.Fatalf("live generation %d after promotion, want 1", gen)
	}
	if forecasts.Load() == 0 {
		t.Fatal("no forecasts completed during the cycle")
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d forecasts came back short during the swap", n)
	}
}

// Restarts resume: a second trainer on the same consumer group must
// not re-replay history the first one committed.
func TestReplayResumesFromCommittedOffsets(t *testing.T) {
	ds := recordFleet()
	b := broker.New()
	if err := b.CreateTopic("ais", 8); err != nil {
		t.Fatal(err)
	}
	produceDataset(t, b, "ais", ds)

	live, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := New(fastConfig(b, live, t))
	if err != nil {
		t.Fatal(err)
	}
	res1 := tr1.RunCycle()
	if res1.Replayed == 0 {
		t.Fatal("first trainer replayed nothing")
	}
	tr1.Stop() // "process restart": the group's committed offsets survive

	tr2, err := New(fastConfig(b, live, t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Stop()

	// Produce a tail of fresh records; the new trainer must replay
	// exactly those, not the whole history again.
	fresh := 0
	for _, track := range ds.Tracks[:4] {
		last := track.Reports[len(track.Reports)-1]
		for i := 1; i <= 25; i++ {
			r := last
			r.Timestamp = last.Timestamp.Add(time.Duration(i) * 30 * time.Second)
			pos := geo.DeadReckon(geo.Point{Lat: last.Lat, Lon: last.Lon}, last.SOG, last.COG,
				(time.Duration(i) * 30 * time.Second).Seconds())
			r.Lat, r.Lon = pos.Lat, pos.Lon
			if _, _, err := b.Produce("ais", r.MMSI.String(), r); err != nil {
				t.Fatal(err)
			}
			fresh++
		}
	}
	res2 := tr2.RunCycle()
	if res2.Replayed != fresh {
		t.Fatalf("resumed trainer replayed %d records, want exactly the %d fresh ones", res2.Replayed, fresh)
	}
}

// A deliberately worse candidate — a diverging fit — must never replace
// the live model: the verdict is a rejection, the generation does not
// move, and the serving forecasts stay byte-identical.
func TestWorseCandidateNeverShips(t *testing.T) {
	ds := recordFleet()
	b := broker.New()
	if err := b.CreateTopic("ais", 8); err != nil {
		t.Fatal(err)
	}
	produceDataset(t, b, "ais", ds)

	// A decently trained live model...
	var windows []traj.Window
	for _, track := range ds.Tracks {
		windows = append(windows, traj.BuildWindows(track.Reports, traj.DefaultConfig())...)
	}
	live, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	live.Train(windows, svrf.TrainOptions{Epochs: 3, BatchSize: 64, LR: 2e-3, Seed: 1})
	genBefore := live.Generation()

	// ...against a candidate whose fit diverges (absurd learning rate).
	cfg := fastConfig(b, live, t)
	cfg.TrainOptions = svrf.TrainOptions{Epochs: 2, BatchSize: 64, LR: 50, Seed: 1}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()

	w := evalWindow(t, ds)
	before := live.Forecast(w)

	res := tr.RunCycle()
	if res.Skipped {
		t.Fatalf("cycle skipped: %s", res.SkipReason)
	}
	if res.Promotion.Promote || res.Promoted {
		t.Fatalf("worse candidate promoted: %+v", res.Promotion)
	}
	if gen := live.Generation(); gen != genBefore {
		t.Fatalf("generation moved %d -> %d on a rejected candidate", genBefore, gen)
	}
	after := live.Forecast(w)
	for h := range before {
		if before[h] != after[h] {
			t.Fatalf("horizon %d: live forecast changed on a rejected candidate: %v -> %v",
				h, before[h], after[h])
		}
	}
}

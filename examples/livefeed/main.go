// Livefeed: the push side of the middleware — run the proximity
// scenario through the pipeline with a live-feed hub attached, then
// consume the stream like an external UI would: one subscriber over the
// length-prefixed JSON TCP protocol (all event classes plus a region),
// and one over the SSE endpoint (a single vessel). Compare with
// collisionwatch, which polls the same data through the kvstore.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/pipeline"
)

func main() {
	hub := feed.NewHub(feed.Options{RegionResolution: 7})
	defer hub.Close()

	cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
	cfg.Feed = hub
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	// Both transports, exactly as deployed: TCP feed server + HTTP API.
	feedSrv := feed.NewServer(hub)
	go feedSrv.ListenAndServe("127.0.0.1:0")
	defer feedSrv.Close()
	api := pipeline.NewAPI(p)
	go api.ListenAndServe("127.0.0.1:0")
	defer api.Close()
	for feedSrv.Addr() == nil || api.Addr() == nil {
		time.Sleep(5 * time.Millisecond)
	}

	// The §6.2-style scenario, sized like collisionwatch: groups of
	// vessels converging on meeting points within the next half hour.
	scfg := fleetsim.DefaultProximityConfig()
	scfg.Groups4, scfg.Groups3, scfg.CrossingPairs = 3, 4, 2
	ds := fleetsim.GenerateProximity(scfg)
	// Watch a vessel with a ground-truth encounter ahead, and the region
	// cell it is sailing through at the evaluation time.
	watched := ds.Truth[0].A
	hist := ds.History[watched]
	region := geo.Point{Lat: hist[len(hist)-1].Lat, Lon: hist[len(hist)-1].Lon}

	// Subscriber 1 (TCP): every event class, plus the watched region,
	// conflating state frames per vessel.
	tcpClient, err := feed.Dial(feedSrv.Addr().String(), feed.Request{
		Events: []string{"all"},
		Regions: []string{
			fmt.Sprintf("%.3f,%.3f", region.Lat, region.Lon),
		},
		Policy: "conflate",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tcpClient.Close()
	fmt.Printf("tcp subscriber topics: %v\n", tcpClient.Topics)
	go func() {
		for {
			raw, err := tcpClient.Next()
			if err != nil {
				return
			}
			fmt.Printf("  [tcp] %s\n", truncate(string(raw), 140))
		}
	}()

	// Subscriber 2 (SSE): follow the watched vessel itself.
	sseURL := fmt.Sprintf("http://%s/api/stream?vessel=%s&events=all", api.Addr(), watched)
	go tailSSE(sseURL)
	// Replay only once both subscribers are attached, so neither misses
	// the action.
	for deadline := time.Now().Add(5 * time.Second); hub.Snapshot().Subscribers < 2; {
		if time.Now().After(deadline) {
			log.Fatal("subscribers failed to attach")
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Printf("scenario: %d vessels, watching %s over SSE\n\n", len(ds.Vessels), watched)

	// Replay the histories plus ten minutes of ground truth in global
	// time order, so live encounters fire while the subscribers watch.
	var all []ais.PositionReport
	for _, h := range ds.History {
		all = append(all, h...)
	}
	for mmsi, track := range ds.FullTracks {
		for i, tp := range track {
			if tp.At.Before(ds.EvalTime) || tp.At.After(ds.EvalTime.Add(10*time.Minute)) || i%6 != 0 {
				continue
			}
			all = append(all, ais.PositionReport{
				MMSI: mmsi, Lat: tp.Pos.Lat, Lon: tp.Pos.Lon,
				SOG: tp.SOG, COG: tp.COG, Status: ais.StatusUnderWayEngine,
				Timestamp: tp.At,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Timestamp.Before(all[j].Timestamp) })
	for _, r := range all {
		p.Ingest(r, r.Timestamp)
	}
	p.Drain(60 * time.Second)
	time.Sleep(500 * time.Millisecond) // let the consumers print

	s := hub.Snapshot()
	fmt.Printf("\nfeed: %d subscribers, %d published, %d fanned, %d conflated, %d dropped, fan-out p99 %v\n",
		s.Subscribers, s.Published, s.Fanned, s.Conflated, s.Dropped, s.FanoutP99)
}

// tailSSE prints the event-stream frames of one SSE subscription.
func tailSSE(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Printf("sse: %v", err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			fmt.Printf("  [sse] %s\n", truncate(strings.TrimPrefix(line, "data: "), 140))
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

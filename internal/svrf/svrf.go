// Package svrf implements the paper's Short-term Vessel Route
// Forecasting model (§4.2, Figure 3): a BiLSTM over the last 20
// spatiotemporal displacements of a vessel followed by a fully
// connected layer emitting six (Δlat, Δlon) transitions at 5-minute
// intervals up to a 30-minute horizon, with L1 in-layer regularisation —
// plus the linear kinematic baseline the evaluation compares against
// (Table 1).
//
// A single trained Model is safe for concurrent forecasting and is
// intended to be mounted once per process and shared by every vessel
// actor, as the paper's integration does.
package svrf

import (
	"io"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/metrics"
	"seatwin/internal/nn"
	"seatwin/internal/traj"
)

// Predictor forecasts a vessel's future positions from a preprocessed
// trajectory window.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Forecast returns one position per horizon (6 positions spanning
	// 5..30 minutes for the default configuration).
	Forecast(w traj.Window) []geo.Point
}

// Kinematic is the linear baseline of §6.1: dead reckoning from the
// last reported position, speed over ground and course over ground.
type Kinematic struct {
	Horizons    int
	HorizonStep time.Duration
}

// NewKinematic returns the baseline with the paper's geometry.
func NewKinematic() Kinematic {
	return Kinematic{Horizons: 6, HorizonStep: 5 * time.Minute}
}

// Name implements Predictor.
func (k Kinematic) Name() string { return "Linear Kinematic Model" }

// Forecast implements Predictor.
func (k Kinematic) Forecast(w traj.Window) []geo.Point {
	out := make([]geo.Point, 0, k.Horizons)
	sog, cog := w.LastSOG, w.LastCOG
	if sog < 0 {
		sog = 0
	}
	for h := 1; h <= k.Horizons; h++ {
		dt := time.Duration(h) * k.HorizonStep
		out = append(out, geo.DeadReckon(w.LastPos, sog, cog, dt.Seconds()))
	}
	return out
}

// Config shapes the S-VRF network. Defaults follow the paper's reduced
// architecture: fixed 20-step input, BiLSTM, 6-transition output.
type Config struct {
	InputSteps  int
	Hidden      int
	Horizons    int
	HorizonStep time.Duration
	Downsample  time.Duration
	// Bidirectional selects BiLSTM (the paper's final architecture)
	// versus plain LSTM (its earlier iteration, kept for the ablation).
	Bidirectional bool
	L1            float64
	Seed          int64
}

// DefaultConfig returns the Figure 3 architecture.
func DefaultConfig() Config {
	return Config{
		InputSteps:    20,
		Hidden:        32,
		Horizons:      6,
		HorizonStep:   5 * time.Minute,
		Downsample:    30 * time.Second,
		Bidirectional: true,
		L1:            1e-5,
		Seed:          1,
	}
}

// Model is the trained S-VRF network.
type Model struct {
	cfg Config
	net *nn.SeqRegressor
}

// New builds an untrained model.
func New(cfg Config) (*Model, error) {
	net, err := nn.NewSeqRegressor(nn.Config{
		InputDim:      3,
		Hidden:        cfg.Hidden,
		OutputDim:     2 * cfg.Horizons,
		Bidirectional: cfg.Bidirectional,
		L1:            cfg.L1,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// Name implements Predictor.
func (m *Model) Name() string {
	if m.cfg.Bidirectional {
		return "S-VRF"
	}
	return "S-VRF (LSTM)"
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Forecast implements Predictor.
func (m *Model) Forecast(w traj.Window) []geo.Point {
	out := m.net.Predict(w.Input)
	return traj.PredictedPositions(w.LastPos, out)
}

// ForecastReports runs the live on-stream path: it converts the most
// recent reports into the model input and forecasts from the anchor
// (the last report that entered the input). It also returns the
// anchor so callers can timestamp the forecast points correctly. ok is
// false when the history is too short.
func (m *Model) ForecastReports(reports []ais.PositionReport) (pts []geo.Point, anchor ais.PositionReport, ok bool) {
	input, anchor, ok := traj.InputFromReports(reports, m.cfg.InputSteps, m.cfg.Downsample)
	if !ok {
		return nil, ais.PositionReport{}, false
	}
	out := m.net.Predict(input)
	return traj.PredictedPositions(geo.Point{Lat: anchor.Lat, Lon: anchor.Lon}, out), anchor, true
}

// TrainOptions controls Train.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Workers   int
	Seed      int64
	// Progress receives per-epoch training loss; return false to stop.
	Progress func(epoch int, loss float64) bool
}

// DefaultTrainOptions trains quickly at simulation scale.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 12, BatchSize: 64, LR: 2e-3, Workers: 0, Seed: 1}
}

// Train fits the network on preprocessed windows and returns the final
// mean training loss.
func (m *Model) Train(windows []traj.Window, opt TrainOptions) float64 {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Seq: w.Input, Target: w.Target}
	}
	return m.net.Fit(samples, nn.FitOptions{
		Epochs:    opt.Epochs,
		BatchSize: opt.BatchSize,
		LR:        opt.LR,
		Workers:   opt.Workers,
		Seed:      opt.Seed,
		Progress:  opt.Progress,
	})
}

// ValidationMSE returns the network loss on held-out windows.
func (m *Model) ValidationMSE(windows []traj.Window) float64 {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Seq: w.Input, Target: w.Target}
	}
	return m.net.MSE(samples)
}

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error { return m.net.Save(w) }

// SaveFile writes the model to a file atomically.
func (m *Model) SaveFile(path string) error { return m.net.SaveFile(path) }

// Load reads a model saved by Save. The svrf Config geometry is
// recovered from the embedded network configuration.
func Load(r io.Reader, cfg Config) (*Model, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// LoadFile reads a model saved by SaveFile.
func LoadFile(path string, cfg Config) (*Model, error) {
	net, err := nn.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// EvaluateADE scores a predictor on test windows, returning per-horizon
// average displacement error in meters — the Table 1 metric.
func EvaluateADE(p Predictor, windows []traj.Window) *metrics.DisplacementError {
	if len(windows) == 0 {
		return metrics.NewDisplacementError(0)
	}
	horizons := len(windows[0].Truth)
	de := metrics.NewDisplacementError(horizons)
	for _, w := range windows {
		pred := p.Forecast(w)
		for h := 0; h < horizons && h < len(pred); h++ {
			de.Add(h, geo.Haversine(pred[h], w.Truth[h]))
		}
	}
	return de
}

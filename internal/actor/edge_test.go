package actor

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestGetOrSpawnRespawnAfterStop(t *testing.T) {
	sys := NewSystem("t")
	props := echoProps()
	pid1, spawned := sys.GetOrSpawn("cell-7", props)
	if !spawned {
		t.Fatal("first call must spawn")
	}
	if err := sys.StopWait(pid1, askTimeout); err != nil {
		t.Fatal(err)
	}
	pid2, spawned := sys.GetOrSpawn("cell-7", props)
	if !spawned {
		t.Fatal("stopped actor must be respawned")
	}
	if pid2 == pid1 {
		t.Fatal("respawn returned the dead PID")
	}
	if _, err := sys.Ask(pid2, "alive?", askTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestStopNilSafe(t *testing.T) {
	sys := NewSystem("t")
	sys.Stop(nil)   // no panic
	sys.Poison(nil) // no panic
	if err := sys.StopWait(nil, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sys.PoisonWait(nil, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sys.Send(nil, "into the void") // dead letter, no panic
}

func TestPerActorThroughputOverride(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	var processed int64
	done := make(chan struct{})
	const n = 1000
	props := PropsOf(func(c *Context) {
		if _, ok := c.Message().(int); ok {
			if atomic.AddInt64(&processed, 1) == n {
				close(done)
			}
		}
	}).WithThroughput(1) // yield after every message
	pid := sys.Spawn(props)
	for i := 0; i < n; i++ {
		sys.Send(pid, i)
	}
	select {
	case <-done:
	case <-time.After(askTimeout):
		t.Fatalf("throughput-1 actor stalled at %d/%d", atomic.LoadInt64(&processed), n)
	}
}

func TestAskConcurrent(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	pid := sys.Spawn(echoProps())
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		go func(g int) {
			r, err := sys.Ask(pid, g, askTimeout)
			if err == nil && r != g {
				err = ErrTimeout
			}
			errs <- err
		}(g)
	}
	for g := 0; g < 32; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLifecyclePanicDoesNotBlockStop(t *testing.T) {
	sys := NewSystem("t")
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if _, ok := c.Message().(Stopping); ok {
			panic("panics during shutdown")
		}
	}))
	if err := sys.StopWait(pid, askTimeout); err != nil {
		t.Fatalf("stop blocked by lifecycle panic: %v", err)
	}
	if pid.Alive() {
		t.Fatal("actor still alive")
	}
}

func TestRestartingMessageCarriesReason(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	got := make(chan any, 1)
	props := PropsFromProducer(func() Actor {
		return ReceiveFunc(func(c *Context) {
			switch m := c.Message().(type) {
			case Restarting:
				select {
				case got <- m.Reason:
				default:
				}
			case string:
				panic("kaboom-reason")
			}
		})
	})
	pid := sys.Spawn(props)
	sys.Send(pid, "x")
	select {
	case reason := <-got:
		if reason != "kaboom-reason" {
			t.Fatalf("reason = %v", reason)
		}
	case <-time.After(askTimeout):
		t.Fatal("Restarting never delivered")
	}
}

// Package geo provides geodesic primitives on the WGS84 sphere used
// throughout the maritime forecasting system: distances, bearings,
// destination points, great-circle interpolation and bounding boxes.
//
// All angles at the public API are expressed in degrees, distances in
// meters and speeds in knots unless stated otherwise, matching the
// conventions of AIS data. Internally computations use the spherical
// earth model with the WGS84 mean radius; for the distances that matter
// to the system (up to a 30-minute vessel displacement, i.e. tens of
// kilometers) the spherical error is far below the positional noise of
// AIS itself.
package geo

import (
	"fmt"
	"math"
)

const (
	// EarthRadiusMeters is the mean earth radius of the WGS84 ellipsoid.
	EarthRadiusMeters = 6371008.8

	// MetersPerNauticalMile converts nautical miles to meters.
	MetersPerNauticalMile = 1852.0

	// KnotsToMetersPerSecond converts speed in knots to m/s.
	KnotsToMetersPerSecond = MetersPerNauticalMile / 3600.0

	degToRad = math.Pi / 180.0
	radToDeg = 180.0 / math.Pi
)

// Point is a geographic position in degrees, WGS84.
type Point struct {
	Lat float64 // latitude in degrees, positive north, [-90, 90]
	Lon float64 // longitude in degrees, positive east, [-180, 180)
}

// String renders the point with the precision AIS provides (~1e-4 deg).
func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the legal coordinate domain.
// The longitude domain is half-open, [-180, 180), matching the Point
// contract and NormalizeLon: the antimeridian is represented only as
// -180, so +180 is out of domain (normalize first if it can occur).
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon < 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// NormalizeLon wraps a longitude into [-180, 180).
func NormalizeLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

// Normalize returns the point with its longitude wrapped into [-180, 180)
// and its latitude clamped to [-90, 90].
func (p Point) Normalize() Point {
	return Point{Lat: clamp(p.Lat, -90, 90), Lon: NormalizeLon(p.Lon)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	la1 := a.Lat * degToRad
	la2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// FastDistance returns an equirectangular approximation of the distance
// between a and b in meters. It is accurate to well under 1% for the
// short baselines the streaming pipeline evaluates (a few kilometers)
// and roughly 5x cheaper than Haversine; the hot proximity path uses it.
func FastDistance(a, b Point) float64 {
	meanLat := (a.Lat + b.Lat) / 2 * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	x := dLon * math.Cos(meanLat)
	return EarthRadiusMeters * math.Sqrt(x*x+dLat*dLat)
}

// FastDistancesInto writes FastDistance(from, pts[i]) into dst[i] for
// every point. dst must be at least len(pts) long. The arithmetic is
// element-for-element identical to FastDistance — callers that compare
// the results against per-pair FastDistance calls (the event detectors'
// parity tests do) see bitwise-equal values — while the batch form
// keeps the compiler from reloading the fixed operand per call and
// bounds-checks dst once.
func FastDistancesInto(dst []float64, from Point, pts []Point) {
	if len(pts) == 0 {
		return
	}
	dst = dst[:len(pts)]
	fLat, fLon := from.Lat, from.Lon
	for i, p := range pts {
		meanLat := (fLat + p.Lat) / 2 * degToRad
		dLat := (p.Lat - fLat) * degToRad
		dLon := (p.Lon - fLon) * degToRad
		x := dLon * math.Cos(meanLat)
		dst[i] = EarthRadiusMeters * math.Sqrt(x*x+dLat*dLat)
	}
}

// InitialBearing returns the initial great-circle bearing from a to b in
// degrees clockwise from true north, in [0, 360).
func InitialBearing(a, b Point) float64 {
	la1 := a.Lat * degToRad
	la2 := b.Lat * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	br := math.Atan2(y, x) * radToDeg
	return math.Mod(br+360, 360)
}

// Destination returns the point reached starting at p and travelling
// distanceMeters along the great circle with the given initial bearing
// (degrees from north).
func Destination(p Point, bearingDeg, distanceMeters float64) Point {
	la1 := p.Lat * degToRad
	lo1 := p.Lon * degToRad
	br := bearingDeg * degToRad
	ad := distanceMeters / EarthRadiusMeters // angular distance

	sinLa2 := math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(br)
	la2 := math.Asin(clamp(sinLa2, -1, 1))
	y := math.Sin(br) * math.Sin(ad) * math.Cos(la1)
	x := math.Cos(ad) - math.Sin(la1)*sinLa2
	lo2 := lo1 + math.Atan2(y, x)

	return Point{Lat: la2 * radToDeg, Lon: NormalizeLon(lo2 * radToDeg)}
}

// Interpolate returns the point a fraction f (0..1) along the great
// circle from a to b. f outside [0,1] extrapolates along the circle.
func Interpolate(a, b Point, f float64) Point {
	d := Haversine(a, b)
	if d == 0 {
		return a
	}
	// For the short segments the pipeline interpolates, re-deriving the
	// bearing and walking the circle is accurate and avoids the special
	// cases of the slerp formulation at antipodes.
	return Destination(a, InitialBearing(a, b), d*f)
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point { return Interpolate(a, b, 0.5) }

// CrossTrack returns the signed cross-track distance in meters of point p
// from the great-circle path through a towards b. Negative values lie to
// the left of the path.
func CrossTrack(p, a, b Point) float64 {
	d13 := Haversine(a, p) / EarthRadiusMeters
	th13 := InitialBearing(a, p) * degToRad
	th12 := InitialBearing(a, b) * degToRad
	return math.Asin(clamp(math.Sin(d13)*math.Sin(th13-th12), -1, 1)) * EarthRadiusMeters
}

// AlongTrack returns the distance in meters from a to the closest point
// on the path a->b to p, measured along the path.
func AlongTrack(p, a, b Point) float64 {
	d13 := Haversine(a, p) / EarthRadiusMeters
	xt := CrossTrack(p, a, b) / EarthRadiusMeters
	cosD13 := math.Cos(d13)
	cosXT := math.Cos(xt)
	if cosXT == 0 {
		return 0
	}
	return math.Acos(clamp(cosD13/cosXT, -1, 1)) * EarthRadiusMeters
}

// Displacement returns the (dLat, dLon) in degrees from a to b with the
// longitude difference wrapped across the antimeridian. It is the feature
// representation the S-VRF model consumes.
func Displacement(a, b Point) (dLat, dLon float64) {
	dLat = b.Lat - a.Lat
	dLon = b.Lon - a.Lon
	if dLon > 180 {
		dLon -= 360
	} else if dLon < -180 {
		dLon += 360
	}
	return dLat, dLon
}

// Offset returns p displaced by (dLat, dLon) degrees, normalized.
func Offset(p Point, dLat, dLon float64) Point {
	return Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}.Normalize()
}

// MetersPerDegree returns the local scale of one degree of latitude and
// one degree of longitude, in meters, at the given latitude.
func MetersPerDegree(latDeg float64) (perLat, perLon float64) {
	perLat = EarthRadiusMeters * degToRad
	perLon = perLat * math.Cos(latDeg*degToRad)
	return perLat, perLon
}

// DeadReckon projects a position forward dt seconds at the given speed
// over ground (knots) and course over ground (degrees), i.e. the linear
// kinematic model the paper uses as the S-VRF baseline.
func DeadReckon(p Point, sogKnots, cogDeg, dtSeconds float64) Point {
	dist := sogKnots * KnotsToMetersPerSecond * dtSeconds
	return Destination(p, cogDeg, dist)
}

// BBox is a geographic bounding box. Boxes never cross the antimeridian;
// regions that do are represented by the caller as two boxes.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether p lies inside (or on the border of) the box.
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box centroid.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Expand grows the box by the given margin in degrees on every side.
func (b BBox) Expand(deg float64) BBox {
	return BBox{
		MinLat: math.Max(b.MinLat-deg, -90),
		MinLon: b.MinLon - deg,
		MaxLat: math.Min(b.MaxLat+deg, 90),
		MaxLon: b.MaxLon + deg,
	}
}

// Sample returns a point at the given fractional position inside the box
// (u along longitude, v along latitude, both 0..1).
func (b BBox) Sample(u, v float64) Point {
	return Point{
		Lat: b.MinLat + v*(b.MaxLat-b.MinLat),
		Lon: b.MinLon + u*(b.MaxLon-b.MinLon),
	}
}

// EuropeanCoverage is the evaluation-dataset bounding box from §6.1 of
// the paper: the European continent, North Atlantic, Barents, Caspian,
// Red Sea and Persian Gulf.
var EuropeanCoverage = BBox{MinLat: 24.0, MinLon: -41.99983, MaxLat: 78.9862, MaxLon: 68.9986}

// AegeanSea is the region of the synthetic vessel-proximity dataset used
// by the collision-forecasting evaluation (§6.2).
var AegeanSea = BBox{MinLat: 35.0, MinLon: 22.5, MaxLat: 41.0, MaxLon: 28.3}

// CourseDiff returns the smallest absolute difference between two courses
// in degrees, in [0, 180].
func CourseDiff(a, b float64) float64 {
	d := math.Abs(math.Mod(a-b, 360))
	if d > 180 {
		d = 360 - d
	}
	return d
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/pipeline"
	"seatwin/internal/vtff"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
)

// Figure6Result reproduces Figure 6: the average per-message processing
// time as the live actor population grows.
type Figure6Result struct {
	Series   []pipeline.Sample
	Stats    pipeline.Stats
	Duration time.Duration
	Vessels  int
	Messages int
}

// RunFigure6 streams a simulated global fleet through the full actor
// pipeline. The forecaster may be a trained S-VRF model ("selected as a
// typical use case" in §6.3 — for latency purposes an untrained model
// has identical compute cost) or the kinematic baseline for an
// ablation. ratePerSec > 0 paces ingestion like the paper's live feed;
// 0 replays at maximum speed (saturation test).
func RunFigure6(fc events.TrackForecaster, vessels, messages int, ratePerSec float64, seed int64) (Figure6Result, error) {
	p, err := pipeline.New(pipeline.DefaultConfig(fc))
	if err != nil {
		return Figure6Result{}, err
	}
	defer p.Shutdown(10 * time.Second)
	res, err := pipeline.RunScalability(p, pipeline.ScalabilityConfig{
		Vessels:    vessels,
		Messages:   messages,
		Seed:       seed,
		Consumers:  4,
		Partitions: 8,
		RatePerSec: ratePerSec,
	})
	if err != nil {
		return Figure6Result{}, err
	}
	return Figure6Result{
		Series:   res.Series,
		Stats:    res.Stats,
		Duration: res.Duration,
		Vessels:  vessels,
		Messages: messages,
	}, nil
}

// Format renders the Figure 6 series as rows (actor count, window-100
// average processing time), with the summary the paper quotes.
func (r Figure6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: processing time vs live actors (%d vessels, %d messages, wall %v)\n",
		r.Vessels, r.Messages, r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "%12s %12s %22s\n", "vessels", "actors", "avg processing (w=100)")
	step := len(r.Series) / 24
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Series); i += step {
		s := r.Series[i]
		fmt.Fprintf(&b, "%12d %12d %22s\n", s.Vessels, s.Actors, s.AvgProcess.Round(time.Microsecond))
	}
	if n := len(r.Series); n > 0 {
		s := r.Series[n-1]
		fmt.Fprintf(&b, "%12d %12d %22s  (final)\n", s.Vessels, s.Actors, s.AvgProcess.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "latency: mean %v p95 %v p99 %v max %v; forecasts %d; dead letters %d\n",
		r.Stats.Latency.Mean.Round(time.Microsecond),
		r.Stats.Latency.P95.Round(time.Microsecond),
		r.Stats.Latency.P99.Round(time.Microsecond),
		r.Stats.Latency.Max.Round(time.Microsecond),
		r.Stats.Forecasts, r.Stats.DeadLetter)
	return b.String()
}

// DatasetResult reports the §6.1 stream statistics of the simulated
// dataset next to the paper's.
type DatasetResult struct {
	Messages     int
	Vessels      int
	IntervalMean float64
	IntervalStd  float64
}

// RunDatasetStats summarises a trained model's source dataset.
func RunDatasetStats(tm TrainedModel) DatasetResult {
	return DatasetResult{
		Messages:     tm.Messages,
		Vessels:      tm.Vessels,
		IntervalMean: tm.IntervalMean,
		IntervalStd:  tm.IntervalStd,
	}
}

// Format renders the dataset comparison.
func (r DatasetResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataset statistics (after 30 s downsampling)\n")
	fmt.Fprintf(&b, "%-26s %12s %12s\n", "", "simulated", "paper §6.1")
	fmt.Fprintf(&b, "%-26s %12d %12s\n", "AIS messages", r.Messages, "14,617,382")
	fmt.Fprintf(&b, "%-26s %12d %12s\n", "distinct vessels", r.Vessels, "14,895")
	fmt.Fprintf(&b, "%-26s %11.1fs %12s\n", "mean sampling interval", r.IntervalMean, "78.6 s")
	fmt.Fprintf(&b, "%-26s %11.1fs %12s\n", "interval std deviation", r.IntervalStd, "418.3 s")
	return b.String()
}

// VTFFResult reproduces the indirect-vs-direct comparison §5.1 adopts
// from [17].
type VTFFResult struct {
	Comparison vtff.Comparison
	Vessels    int
}

// RunVTFF records regional traffic, forecasts each vessel at a cut
// time and compares indirect rasterised forecasts against the direct
// sequence baseline on the actual future flows.
func RunVTFF(tm TrainedModel, seed int64) VTFFResult {
	cfg := vtff.DefaultConfig()
	ds := fleetsim.Record(geo.AegeanSea, 150, 3*time.Hour, seed)

	cut := ds.Start.Add(ds.Duration - 35*time.Minute)
	lastWindow := cfg.WindowIndex(cut)

	histAcc := vtff.NewAccumulator(cfg)
	actAcc := vtff.NewAccumulator(cfg)
	fc := events.SVRFForecaster{Model: tm.Model}
	histories := make([][]ais.PositionReport, 0, len(ds.Tracks))
	for _, tr := range ds.Tracks {
		var hist []ais.PositionReport
		for _, r := range tr.Reports {
			p := geo.Point{Lat: r.Lat, Lon: r.Lon}
			if r.Timestamp.Before(cut) {
				histAcc.Add(r.MMSI, p, r.Timestamp)
				hist = append(hist, r)
			} else {
				actAcc.Add(r.MMSI, p, r.Timestamp)
			}
		}
		histories = append(histories, hist)
	}
	// One batched pass of the compiled network over the whole fleet.
	forecasts := events.ForecastTracks(fc, histories)
	history := make(map[int64]vtff.Flow)
	for _, w := range histAcc.Windows() {
		history[w] = histAcc.Window(w)
	}
	actual := make(map[int64]vtff.Flow)
	for _, w := range actAcc.Windows() {
		actual[w] = actAcc.Window(w)
	}
	return VTFFResult{
		Comparison: vtff.Compare(forecasts, history, actual, lastWindow, 6, cfg),
		Vessels:    len(ds.Tracks),
	}
}

// Format renders the comparison with the paper's cited benchmark.
func (r VTFFResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Vessel Traffic Flow Forecasting: indirect (S-VRF raster) vs direct (sequence)\n")
	fmt.Fprintf(&b, "vessels %d, windows %d\n", r.Vessels, r.Comparison.Windows)
	fmt.Fprintf(&b, "indirect MAE %.3f vessels/cell, direct MAE %.3f vessels/cell\n",
		r.Comparison.IndirectMAE, r.Comparison.DirectMAE)
	fmt.Fprintf(&b, "indirect advantage %.2fx (the paper cites [17]: often exceeding 1.5x)\n",
		r.Comparison.AdvantageFactor())
	return b.String()
}

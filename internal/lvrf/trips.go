package lvrf

import (
	"time"

	"seatwin/internal/geo"
)

// TrackInput is one vessel's time-ordered positions plus the features
// the junction classifiers use. It deliberately avoids AIS types so the
// package can ingest any historical source.
type TrackInput struct {
	MMSI      uint32
	Features  Features
	Positions []geo.Point
	Times     []time.Time
}

// ExtractTrips splits a track into port-to-port trips: a trip starts
// when the vessel leaves the vicinity of a port and ends when it enters
// the vicinity of a different port. Partial voyages (mid-sea start or
// end) are discarded — EnvClus* trains only on complete trips.
func ExtractTrips(track TrackInput, ports map[string]geo.Point, portRadiusMeters float64) []Trip {
	if portRadiusMeters <= 0 {
		portRadiusMeters = 5000
	}
	var trips []Trip
	var cur *Trip
	prevPort := nearestPort(track.Positions, 0, ports, portRadiusMeters)
	for i := 1; i < len(track.Positions); i++ {
		port := nearestPortAt(track.Positions[i], ports, portRadiusMeters)
		switch {
		case prevPort != "" && port == "":
			// Departure: open a trip anchored at the port.
			cur = &Trip{
				MMSI:     track.MMSI,
				Features: track.Features,
				Origin:   prevPort,
				Points:   []geo.Point{track.Positions[i-1], track.Positions[i]},
				Times:    []time.Time{track.Times[i-1], track.Times[i]},
			}
		case cur != nil && port == "":
			cur.Points = append(cur.Points, track.Positions[i])
			cur.Times = append(cur.Times, track.Times[i])
		case cur != nil && port != "":
			// Arrival: close the trip.
			cur.Points = append(cur.Points, track.Positions[i])
			cur.Times = append(cur.Times, track.Times[i])
			cur.Dest = port
			if port != cur.Origin && len(cur.Points) >= 5 {
				trips = append(trips, *cur)
			}
			cur = nil
		}
		prevPort = port
	}
	return trips
}

func nearestPort(positions []geo.Point, idx int, ports map[string]geo.Point, radius float64) string {
	if idx >= len(positions) {
		return ""
	}
	return nearestPortAt(positions[idx], ports, radius)
}

func nearestPortAt(p geo.Point, ports map[string]geo.Point, radius float64) string {
	bestName, bestDist := "", radius
	for name, pos := range ports {
		// Cheap prefilter before the distance call.
		if dLat := pos.Lat - p.Lat; dLat > 0.5 || dLat < -0.5 {
			continue
		}
		if d := geo.FastDistance(p, pos); d < bestDist {
			bestName, bestDist = name, d
		}
	}
	return bestName
}

// Package views is the read-side serving layer of the middleware: a set
// of materialized views refreshed from the write path and published as
// immutable, epoch-numbered snapshots that readers grab with one atomic
// load.
//
// The write side (the pipeline's writer actors) pushes every vessel
// state and event delta into per-view staging (ApplyState/ApplyEvent);
// a background refresher periodically folds the staging into four
// pre-encoded snapshots — the world vessel list, per-hex-cell region
// summaries, the recent-events window and the port-congestion rollup —
// and swaps each in atomically with a new epoch. Serving a request is
// then one atomic pointer load plus writes of pre-encoded JSON: no
// locks, no kvstore reads, and no per-request allocations (the PR3/PR5
// zero-alloc playbook applied to the read path). The kvstore remains
// the durable fallback; views are a serving cache, not a store.
//
// The shape follows Amariei et al.'s cell-grid architecture
// (1810.00090): aggregates are pre-materialized per cell on the write
// path so the read path never computes them per request.
package views

import (
	"sync"
	"sync/atomic"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/metrics"
)

// Config assembles a Views registry.
type Config struct {
	// RegionResolution is the hexgrid resolution of the per-cell region
	// summaries (<=0 selects 7, ~4.5 km cells — the collision grid "K").
	RegionResolution int
	// EventWindow bounds the recent-events view (<=0 selects 512).
	EventWindow int
	// RefreshInterval is the background refresh cadence (0 selects
	// 100ms; negative disables the background refresher — tests and
	// embedders then drive Refresh themselves).
	RefreshInterval time.Duration
	// DefaultLimit is how many newest vessels the pre-concatenated
	// default /api/vessels body covers (<=0 selects 100). Requests at
	// the default limit with no filter are served with a single Write.
	DefaultLimit int
	// ExpireAfter drops vessels whose last report is older than this
	// relative to the newest report seen (0 = keep forever). Feeds that
	// replay or simulate time want the relative form; it makes the view
	// population track the active fleet, not the all-time one.
	ExpireAfter time.Duration
}

// VesselState is one vessel state delta entering the world view — the
// writer actor's document, mirroring what it persists into the kvstore.
type VesselState struct {
	MMSI     ais.MMSI
	Name     string
	Lat, Lon float64
	SOG, COG float64
	Status   string
	TS       time.Time
	Forecast []events.ForecastPoint
}

// stateShardCount stripes the vessel staging map (power of two): writer
// actors apply concurrently and only contend within a stripe.
const stateShardCount = 16

// vesselEntry is one vessel's staged state. enc is the entry's
// pre-encoded JSON document; nil marks it dirty (re-encoded by the next
// refresh into a fresh immutable buffer, so snapshots taken earlier
// keep their bytes).
type vesselEntry struct {
	state VesselState
	cell  hexgrid.Cell // at the region resolution, computed on apply
	enc   []byte
}

// stateShard is one stripe of the staging map.
type stateShard struct {
	mu      sync.Mutex
	entries map[ais.MMSI]*vesselEntry
	_       [40]byte
}

// Views maintains the materialized views and their current snapshots.
// ApplyState/ApplyEvent are safe for concurrent use (the write path);
// the snapshot accessors are lock-free (the read path).
type Views struct {
	cfg Config

	shards [stateShardCount]stateShard

	evMu    sync.Mutex
	evRing  [][]byte // encoded event docs, ring of cfg.EventWindow
	evStart int
	evCount int

	// congestionSource, when set, feeds the congestion rollup view
	// (guarded by refreshMu: set before the first refresh).
	congestionSource func() []congestion.Status

	epoch    atomic.Uint64
	vessels  atomic.Pointer[VesselSnapshot]
	regions  atomic.Pointer[RegionSnapshot]
	events   atomic.Pointer[EventSnapshot]
	congSnap atomic.Pointer[CongestionSnapshot]

	// refreshMu serialises refreshes (the background loop and any
	// manual Refresh callers); lastSwap is the wall-clock time of the
	// last completed refresh (the epoch-age gauge).
	refreshMu sync.Mutex
	lastSwap  atomic.Int64 // unix nanos

	statesApplied *metrics.ShardedCounter
	eventsApplied *metrics.ShardedCounter
	refreshes     atomic.Int64
	refreshLat    *metrics.ShardedLatencyRecorder

	// Refresh scratch, reused across refreshes (single-threaded under
	// refreshMu). Snapshots never reference scratch memory.
	itemScratch []VesselItem
	regionAgg   map[hexgrid.Cell]*regionAggregate

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New builds the registry and starts the background refresher (unless
// RefreshInterval is negative). Close stops it.
func New(cfg Config) *Views {
	if cfg.RegionResolution <= 0 || cfg.RegionResolution > hexgrid.MaxResolution {
		cfg.RegionResolution = 7
	}
	if cfg.EventWindow <= 0 {
		cfg.EventWindow = 512
	}
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = 100 * time.Millisecond
	}
	if cfg.DefaultLimit <= 0 {
		cfg.DefaultLimit = 100
	}
	v := &Views{
		cfg:           cfg,
		evRing:        make([][]byte, cfg.EventWindow),
		statesApplied: metrics.NewShardedCounter(0),
		eventsApplied: metrics.NewShardedCounter(0),
		refreshLat:    metrics.NewShardedLatencyRecorder(0, 1<<12),
		regionAgg:     make(map[hexgrid.Cell]*regionAggregate, 256),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for i := range v.shards {
		v.shards[i].entries = make(map[ais.MMSI]*vesselEntry, 64)
	}
	// Install empty snapshots so readers before the first refresh see a
	// valid (epoch 0) world, never nil.
	v.vessels.Store(emptyVesselSnapshot())
	v.regions.Store(emptyRegionSnapshot())
	v.events.Store(emptyEventSnapshot())
	v.congSnap.Store(emptyCongestionSnapshot())
	if cfg.RefreshInterval > 0 {
		go v.refreshLoop()
	} else {
		close(v.done)
	}
	return v
}

// SetCongestionSource wires the congestion rollup to a status provider
// (the pipeline's monitor). Call before traffic; nil keeps the view
// empty.
func (v *Views) SetCongestionSource(src func() []congestion.Status) {
	v.refreshMu.Lock()
	v.congestionSource = src
	v.refreshMu.Unlock()
}

// Close stops the background refresher. Snapshots stay readable.
func (v *Views) Close() {
	v.closeOnce.Do(func() {
		if v.cfg.RefreshInterval > 0 {
			close(v.stop)
			<-v.done
		}
	})
}

func (v *Views) refreshLoop() {
	defer close(v.done)
	ticker := time.NewTicker(v.cfg.RefreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-v.stop:
			return
		case <-ticker.C:
			v.Refresh()
		}
	}
}

// shardFor routes an MMSI to its staging stripe.
func (v *Views) shardFor(m ais.MMSI) *stateShard {
	h := uint64(m)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &v.shards[h&(stateShardCount-1)]
}

// ApplyState stages one vessel state delta. Older-than-staged deltas
// are dropped (cluster handoff can briefly deliver from two writers).
func (v *Views) ApplyState(s VesselState) {
	cell := hexgrid.LatLonToCell(geo.Point{Lat: s.Lat, Lon: s.Lon}, v.cfg.RegionResolution)
	sh := v.shardFor(s.MMSI)
	sh.mu.Lock()
	e, ok := sh.entries[s.MMSI]
	if !ok {
		e = &vesselEntry{}
		sh.entries[s.MMSI] = e
	} else if s.TS.Before(e.state.TS) {
		sh.mu.Unlock()
		return
	}
	e.state = s
	e.cell = cell
	e.enc = nil
	sh.mu.Unlock()
	v.statesApplied.Inc(uint64(s.MMSI), 1)
}

// ApplyEvent stages one event into the recent-events window. Events are
// immutable facts, so the document is encoded once here and the refresh
// only assembles windows.
func (v *Views) ApplyEvent(e events.Event) {
	enc := appendEventJSON(nil, e)
	v.evMu.Lock()
	idx := (v.evStart + v.evCount) % len(v.evRing)
	if v.evCount == len(v.evRing) {
		v.evStart = (v.evStart + 1) % len(v.evRing)
		v.evCount--
	}
	v.evRing[idx] = enc
	v.evCount++
	v.evMu.Unlock()
	v.eventsApplied.Inc(uint64(e.A), 1)
}

// Current snapshot accessors: one atomic load each, safe to retain (a
// snapshot is immutable once published).

// Vessels returns the current world vessel list snapshot.
func (v *Views) Vessels() *VesselSnapshot { return v.vessels.Load() }

// Regions returns the current per-cell region summary snapshot.
func (v *Views) Regions() *RegionSnapshot { return v.regions.Load() }

// Events returns the current recent-events snapshot.
func (v *Views) Events() *EventSnapshot { return v.events.Load() }

// Congestion returns the current congestion rollup snapshot.
func (v *Views) Congestion() *CongestionSnapshot { return v.congSnap.Load() }

// Refresh folds the staging into fresh snapshots and swaps them in,
// returning the new epoch. Any snapshot accessor called after Refresh
// returns observes at least this epoch (the staleness bound).
func (v *Views) Refresh() uint64 {
	v.refreshMu.Lock()
	defer v.refreshMu.Unlock()
	start := time.Now()
	epoch := v.epoch.Add(1)
	builtAt := start

	vs, rs := v.buildVesselAndRegionSnapshots(epoch, builtAt)
	es := v.buildEventSnapshot(epoch, builtAt)
	cs := v.buildCongestionSnapshot(epoch, builtAt)

	v.vessels.Store(vs)
	v.regions.Store(rs)
	v.events.Store(es)
	v.congSnap.Store(cs)

	v.lastSwap.Store(time.Now().UnixNano())
	v.refreshes.Add(1)
	v.refreshLat.Observe(epoch, time.Since(start))
	return epoch
}

// Stats is a snapshot of the registry's instrumentation.
type Stats struct {
	Epoch         uint64
	Refreshes     int64
	StatesApplied int64
	EventsApplied int64
	// EpochAge is how long ago the last refresh completed (0 before the
	// first one).
	EpochAge time.Duration
	// RefreshMean/P99 summarise refresh build+swap latency.
	RefreshMean time.Duration
	RefreshP99  time.Duration
	// SnapshotBytes is the pre-encoded payload held by the current
	// snapshots (vessel docs + region, event and congestion bodies).
	SnapshotBytes int64
	Vessels       int
	Cells         int
	EventsWindow  int
}

// Stats returns the registry's instrumentation counters.
func (v *Views) Stats() Stats {
	lat := v.refreshLat.Snapshot()
	s := Stats{
		Epoch:         v.epoch.Load(),
		Refreshes:     v.refreshes.Load(),
		StatesApplied: v.statesApplied.Value(),
		EventsApplied: v.eventsApplied.Value(),
		RefreshMean:   lat.Mean,
		RefreshP99:    lat.P99,
	}
	if last := v.lastSwap.Load(); last > 0 {
		s.EpochAge = time.Since(time.Unix(0, last))
	}
	vs, rs, es, cs := v.Vessels(), v.Regions(), v.Events(), v.Congestion()
	s.Vessels = len(vs.Items)
	s.Cells = rs.Cells
	s.EventsWindow = len(es.Items)
	s.SnapshotBytes = vs.bytes + int64(len(rs.body)) + es.bytes + int64(len(cs.body))
	return s
}
